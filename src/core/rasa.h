#ifndef RASA_CORE_RASA_H_
#define RASA_CORE_RASA_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/statusor.h"
#include "core/delta.h"
#include "core/explain.h"
#include "core/migration.h"
#include "core/partitioning.h"
#include "core/pop.h"
#include "core/selector.h"

namespace rasa {

class ThreadPool;

/// Top-level options of the RASA algorithm (§IV-A).
struct RasaOptions {
  PartitioningOptions partitioning;
  /// Global time budget: the scaled stand-in for the paper's one-minute SLO.
  double timeout_seconds = 2.0;
  /// Dry-run threshold (§III-B): only produce a migration plan when gained
  /// affinity improves by at least this relative amount.
  double min_improvement = 0.03;
  /// Skip migration-path computation entirely (quality-only experiments).
  bool compute_migration = true;
  MigrationOptions migration;
  /// Extension beyond the paper: after combining subproblem solutions, run
  /// hill-climbing container moves/swaps with whatever global budget
  /// remains. Off by default to keep the paper-faithful pipeline.
  bool refine_with_local_search = false;
  /// Degradation ladder: when the selected pool algorithm fails on a
  /// subproblem, try the *other* pool algorithm before dropping to the
  /// affinity greedy.
  bool try_secondary_algorithm = true;
  /// Per-algorithm circuit breaker: after this many failures within one
  /// Optimize run the algorithm is skipped for the remaining subproblems
  /// (0 disables the breaker).
  int circuit_breaker_failures = 3;
  /// Worker threads for the per-subproblem solves and batch selector
  /// inference: 1 = sequential (default), 0 = one per hardware thread,
  /// n > 1 = a pool of n. Every subproblem gets its own RNG stream and
  /// results are merged in canonical order, so the optimized placement and
  /// all ladder counters are bit-identical at every thread count (see
  /// DESIGN.md "Threading model").
  int num_threads = 1;
  uint64_t seed = 42;
  /// Snapshot-differ thresholds of the incremental path (only read when
  /// OptimizeContext::incremental is set; cold solves never consult them).
  DeltaOptions delta;
  /// POP replica splitting for oversized subproblems (see core/pop.h).
  /// Disabled by default (`pop.max_services == 0`) so the paper-scale
  /// pipeline and its certificates are byte-for-byte unchanged; the
  /// full-scale bench turns it on to keep scale-factor-1 subproblems
  /// inside their budget slices.
  PopOptions pop;
};

/// Per-subproblem record for reporting and ablation benches.
struct SubproblemReport {
  int num_services = 0;
  int num_machines = 0;
  double internal_affinity = 0.0;
  PoolAlgorithm algorithm = PoolAlgorithm::kCg;
  double gained_affinity = 0.0;
  int unplaced_containers = 0;
  double seconds = 0.0;
  bool failed = false;  // fell through the whole ladder to the greedy
  /// Rescued by the other pool algorithm after the selected one failed.
  bool used_secondary = false;
  /// Solved via a POP replica split (RasaOptions::pop triggered on this
  /// subproblem). The matching certificate term stays at the trivial bound
  /// with source "pop".
  bool used_pop = false;
  /// Replicas of the POP split (0 when used_pop is false).
  int pop_replicas = 0;
  /// Affinity-edge weight crossing replica boundaries: what the replica
  /// solvers could not see.
  double pop_cut_affinity = 0.0;
  /// Certificate-term bound minus realized affinity when POP was used: the
  /// measured quality give-up of the split against the optimality-gap
  /// certificate (the term is never tightened, so the bound is the trivial
  /// internal_affinity).
  double pop_quality_loss = 0.0;
};

struct RasaResult {
  Placement new_placement;
  /// Empty when the run dry-runs (improvement below threshold) or when
  /// compute_migration is off.
  MigrationPlan migration;
  bool should_execute = false;

  double original_gained_affinity = 0.0;
  double new_gained_affinity = 0.0;
  double elapsed_seconds = 0.0;
  /// Worker threads the subproblem phase actually ran with.
  int num_threads_used = 1;
  /// Containers that could not be placed anywhere (left offline; should be
  /// zero with default generator headroom).
  int lost_containers = 0;
  int moved_containers = 0;

  // Degradation-ladder accounting (all 0 on a healthy run).
  int solver_failures = 0;      // pool-algorithm attempts that failed
  int secondary_successes = 0;  // rescued by the other pool algorithm
  int greedy_fallbacks = 0;     // bottom of the ladder
  int breaker_skips = 0;        // attempts skipped by an open breaker
  int pop_splits = 0;           // subproblems solved via POP replica split
  /// Sum of pop_quality_loss over POP-solved subproblems.
  double pop_quality_loss = 0.0;

  // Incremental-path accounting (populated only when the call carried an
  // OptimizeContext::incremental state; cold solves leave the defaults: a
  // full resolve with nothing reused).
  /// True iff this run reused the cached partitioning (clean subproblems
  /// skipped the solvers entirely).
  bool incremental = false;
  int dirty_subproblems = 0;
  int reused_subproblems = 0;
  /// Why the incremental path fell back to a full resolve ("cold-start",
  /// "structure", "drift-threshold"); empty when it did not.
  std::string incremental_reason;

  PartitionStats partition_stats;
  std::vector<SubproblemReport> subproblems;

  /// Flight-recorder records, optimality-gap certificate, attribution
  /// waterfall, and placement diff of this run (see explain.h). Always
  /// populated; strictly observation-only.
  ExplainReport report;
};

/// Per-call execution context of RasaOptimizer::Optimize. Everything that
/// varies call to call — as opposed to the immutable RasaOptions the
/// optimizer was constructed with — lives here, so one entry point covers
/// cold solves, pooled solves, and delta-aware re-optimization without an
/// overload per combination.
struct OptimizeContext {
  OptimizeContext() = default;
  explicit OptimizeContext(ThreadPool* p) : pool(p) {}
  OptimizeContext(ThreadPool* p, IncrementalState* inc)
      : pool(p), incremental(inc) {}

  /// Worker pool for the per-subproblem solves and batch selector
  /// inference. Callers that run many Optimize rounds — the workflow,
  /// benches — reuse one pool instead of spawning workers per call. Null
  /// falls back to `RasaOptions::num_threads` semantics (an owned pool is
  /// spun up when the options ask for more than one thread).
  ThreadPool* pool = nullptr;

  /// Non-null selects the delta-aware incremental path (see DESIGN.md
  /// "Incremental re-optimization"): the snapshot is diffed against the
  /// state (the previous cycle's partitioning + solutions), only dirty
  /// subproblems re-solve — warm-starting CG pattern generation and the
  /// MIP incumbent from the prior placement — and cached solutions are
  /// re-applied for clean ones. Falls back to a full resolve (identical to
  /// a null state) when the state is invalid, the cluster structure
  /// changed, or drift exceeds `RasaOptions::delta.full_resolve_fraction`.
  /// On success the state is replaced with this run's partitioning +
  /// solutions, ready for the next cycle; on error it is left untouched.
  IncrementalState* incremental = nullptr;
};

/// The full RASA algorithm: multi-stage service partitioning, per-subproblem
/// algorithm selection, independent solves, solution combination with a
/// default-scheduler fallback for unplaced containers, and the migration
/// path to transition from `current` to the optimized mapping.
class RasaOptimizer {
 public:
  RasaOptimizer(RasaOptions options, AlgorithmSelector selector)
      : options_(std::move(options)), selector_(std::move(selector)) {}

  /// The single optimization entry point. The default context is a cold
  /// full resolve; pass an OptimizeContext to solve on a shared pool
  /// and/or to carry warm-start state across cycles.
  StatusOr<RasaResult> Optimize(
      const Cluster& cluster, const Placement& current,
      const OptimizeContext& ctx = OptimizeContext()) const;

  const RasaOptions& options() const { return options_; }

 private:
  /// Shared implementation: a null `plan` is the stock full resolve
  /// (bit-identical to the pre-incremental pipeline); a non-null `plan`
  /// supplies the partition and the reuse/re-solve split. When `out_state`
  /// is non-null, the merge captures this run's solutions into it.
  StatusOr<RasaResult> OptimizeWithPlan(const Cluster& cluster,
                                        const Placement& current,
                                        ThreadPool* pool, const DeltaPlan* plan,
                                        IncrementalState* out_state) const;

  RasaOptions options_;
  AlgorithmSelector selector_;
};

}  // namespace rasa

#endif  // RASA_CORE_RASA_H_
