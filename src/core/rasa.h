#ifndef RASA_CORE_RASA_H_
#define RASA_CORE_RASA_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/statusor.h"
#include "core/delta.h"
#include "core/explain.h"
#include "core/migration.h"
#include "core/partitioning.h"
#include "core/selector.h"

namespace rasa {

class ThreadPool;

/// Top-level options of the RASA algorithm (§IV-A).
struct RasaOptions {
  PartitioningOptions partitioning;
  /// Global time budget: the scaled stand-in for the paper's one-minute SLO.
  double timeout_seconds = 2.0;
  /// Dry-run threshold (§III-B): only produce a migration plan when gained
  /// affinity improves by at least this relative amount.
  double min_improvement = 0.03;
  /// Skip migration-path computation entirely (quality-only experiments).
  bool compute_migration = true;
  MigrationOptions migration;
  /// Extension beyond the paper: after combining subproblem solutions, run
  /// hill-climbing container moves/swaps with whatever global budget
  /// remains. Off by default to keep the paper-faithful pipeline.
  bool refine_with_local_search = false;
  /// Degradation ladder: when the selected pool algorithm fails on a
  /// subproblem, try the *other* pool algorithm before dropping to the
  /// affinity greedy.
  bool try_secondary_algorithm = true;
  /// Per-algorithm circuit breaker: after this many failures within one
  /// Optimize run the algorithm is skipped for the remaining subproblems
  /// (0 disables the breaker).
  int circuit_breaker_failures = 3;
  /// Worker threads for the per-subproblem solves and batch selector
  /// inference: 1 = sequential (default), 0 = one per hardware thread,
  /// n > 1 = a pool of n. Every subproblem gets its own RNG stream and
  /// results are merged in canonical order, so the optimized placement and
  /// all ladder counters are bit-identical at every thread count (see
  /// DESIGN.md "Threading model").
  int num_threads = 1;
  uint64_t seed = 42;
  /// Snapshot-differ thresholds of the incremental path (only read by
  /// OptimizeIncremental; plain Optimize never consults them).
  DeltaOptions delta;
};

/// Per-subproblem record for reporting and ablation benches.
struct SubproblemReport {
  int num_services = 0;
  int num_machines = 0;
  double internal_affinity = 0.0;
  PoolAlgorithm algorithm = PoolAlgorithm::kCg;
  double gained_affinity = 0.0;
  int unplaced_containers = 0;
  double seconds = 0.0;
  bool failed = false;  // fell through the whole ladder to the greedy
  /// Rescued by the other pool algorithm after the selected one failed.
  bool used_secondary = false;
};

struct RasaResult {
  Placement new_placement;
  /// Empty when the run dry-runs (improvement below threshold) or when
  /// compute_migration is off.
  MigrationPlan migration;
  bool should_execute = false;

  double original_gained_affinity = 0.0;
  double new_gained_affinity = 0.0;
  double elapsed_seconds = 0.0;
  /// Worker threads the subproblem phase actually ran with.
  int num_threads_used = 1;
  /// Containers that could not be placed anywhere (left offline; should be
  /// zero with default generator headroom).
  int lost_containers = 0;
  int moved_containers = 0;

  // Degradation-ladder accounting (all 0 on a healthy run).
  int solver_failures = 0;      // pool-algorithm attempts that failed
  int secondary_successes = 0;  // rescued by the other pool algorithm
  int greedy_fallbacks = 0;     // bottom of the ladder
  int breaker_skips = 0;        // attempts skipped by an open breaker

  // Incremental-path accounting (OptimizeIncremental only; plain Optimize
  // leaves the defaults: a full resolve with nothing reused).
  /// True iff this run reused the cached partitioning (clean subproblems
  /// skipped the solvers entirely).
  bool incremental = false;
  int dirty_subproblems = 0;
  int reused_subproblems = 0;
  /// Why the incremental path fell back to a full resolve ("cold-start",
  /// "structure", "drift-threshold"); empty when it did not.
  std::string incremental_reason;

  PartitionStats partition_stats;
  std::vector<SubproblemReport> subproblems;

  /// Flight-recorder records, optimality-gap certificate, attribution
  /// waterfall, and placement diff of this run (see explain.h). Always
  /// populated; strictly observation-only.
  ExplainReport report;
};

/// The full RASA algorithm: multi-stage service partitioning, per-subproblem
/// algorithm selection, independent solves, solution combination with a
/// default-scheduler fallback for unplaced containers, and the migration
/// path to transition from `current` to the optimized mapping.
class RasaOptimizer {
 public:
  RasaOptimizer(RasaOptions options, AlgorithmSelector selector)
      : options_(std::move(options)), selector_(std::move(selector)) {}

  StatusOr<RasaResult> Optimize(const Cluster& cluster,
                                const Placement& current) const;

  /// As above, but solves subproblems on `pool` (callers that run many
  /// Optimize rounds — the workflow, benches — reuse one pool instead of
  /// spawning workers per call). A null pool falls back to
  /// `options().num_threads` semantics.
  StatusOr<RasaResult> Optimize(const Cluster& cluster,
                                const Placement& current,
                                ThreadPool* pool) const;

  /// Delta-aware re-optimization (see DESIGN.md "Incremental
  /// re-optimization"): diffs the snapshot against `state` (the previous
  /// cycle's partitioning + solutions), re-solves only dirty subproblems —
  /// warm-starting CG pattern generation and the MIP incumbent from the
  /// prior placement — and re-applies cached solutions for clean ones.
  /// Falls back to a full resolve (identical to `Optimize`) when `state` is
  /// invalid, the cluster structure changed, or drift exceeds
  /// `options().delta.full_resolve_fraction`. On success `state` is
  /// replaced with this run's partitioning + solutions, ready for the next
  /// cycle; on error it is left untouched.
  StatusOr<RasaResult> OptimizeIncremental(const Cluster& cluster,
                                           const Placement& current,
                                           ThreadPool* pool,
                                           IncrementalState* state) const;

  const RasaOptions& options() const { return options_; }

 private:
  /// Shared implementation: a null `plan` is the stock full resolve
  /// (bit-identical to the pre-incremental pipeline); a non-null `plan`
  /// supplies the partition and the reuse/re-solve split. When `out_state`
  /// is non-null, the merge captures this run's solutions into it.
  StatusOr<RasaResult> OptimizeWithPlan(const Cluster& cluster,
                                        const Placement& current,
                                        ThreadPool* pool, const DeltaPlan* plan,
                                        IncrementalState* out_state) const;

  RasaOptions options_;
  AlgorithmSelector selector_;
};

}  // namespace rasa

#endif  // RASA_CORE_RASA_H_
