#include "core/delta.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace rasa {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void HashU64(uint64_t& h, uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffu;
    h *= kFnvPrime;
  }
}

void HashInt(uint64_t& h, int v) {
  HashU64(h, static_cast<uint64_t>(static_cast<int64_t>(v)));
}

void HashDouble(uint64_t& h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  HashU64(h, bits);
}

}  // namespace

uint64_t ClusterStructureSignature(const Cluster& cluster) {
  uint64_t h = kFnvOffset;
  HashInt(h, cluster.num_services());
  HashInt(h, cluster.num_machines());
  HashInt(h, cluster.num_resources());
  for (const Service& s : cluster.services()) {
    HashInt(h, s.demand);
    HashInt(h, s.platform);
    for (double r : s.request) HashDouble(h, r);
  }
  for (const Machine& m : cluster.machines()) {
    HashInt(h, m.spec_id);
    HashInt(h, m.platform);
    for (double c : m.capacity) HashDouble(h, c);
  }
  for (const AntiAffinityRule& rule : cluster.anti_affinity()) {
    HashInt(h, rule.max_per_machine);
    HashInt(h, static_cast<int>(rule.services.size()));
    for (int s : rule.services) HashInt(h, s);
  }
  return h;
}

SnapshotDelta DiffSnapshot(const Cluster& cluster, const Placement& current,
                           const IncrementalState& state,
                           const DeltaOptions& options) {
  SnapshotDelta delta;
  if (!state.valid || state.num_services != cluster.num_services() ||
      state.num_machines != cluster.num_machines() ||
      state.num_resources != cluster.num_resources() ||
      state.structure_signature != ClusterStructureSignature(cluster)) {
    delta.full_resolve = true;
    delta.reason = state.valid ? "structure" : "cold-start";
    return delta;
  }

  const int n = static_cast<int>(state.subproblems.size());
  const int num_resources = cluster.num_resources();
  delta.dirty.assign(n, 0);
  delta.residual_increased.assign(n, 0);
  delta.weight_ratio.assign(n, 1.0);
  delta.rebuilt.resize(n);
  delta.residuals.resize(n);

  // Crucial services are exactly the subproblem members; everything else is
  // trivial and charges the machines it currently sits on.
  std::vector<char> crucial(cluster.num_services(), 0);
  for (const SubproblemCache& cache : state.subproblems) {
    for (int s : cache.subproblem.services) crucial[s] = 1;
  }

  double total_internal = 0.0;
  double dirty_internal = 0.0;
  for (int i = 0; i < n; ++i) {
    const SubproblemCache& cache = state.subproblems[i];
    Subproblem& fresh = delta.rebuilt[i];
    fresh.services = cache.subproblem.services;
    fresh.machines = cache.subproblem.machines;
    PopulateSubproblemEdges(cluster, fresh);
    total_internal += fresh.internal_affinity;

    bool dirty = false;
    if (fresh.edges.size() != cache.subproblem.edges.size()) {
      dirty = true;
    } else {
      for (size_t e = 0; e < fresh.edges.size(); ++e) {
        const AffinityEdge& now = fresh.edges[e];
        const AffinityEdge& then = cache.subproblem.edges[e];
        if (now.u != then.u || now.v != then.v) {
          dirty = true;
          break;
        }
        // AddEdge guarantees positive weights, so the ratio is well-defined.
        const double ratio = now.weight / then.weight;
        if (std::fabs(ratio - 1.0) > options.weight_tolerance) dirty = true;
        if (ratio > delta.weight_ratio[i]) delta.weight_ratio[i] = ratio;
      }
    }

    // Residuals after trivial residents, in the solver's machine-local
    // layout. A residual that moved more than the tolerated fraction of
    // capacity re-solves the partition; a residual that merely *grew*
    // (cordoned-off noise, a trivial container leaving) only disqualifies
    // the cached bound from certificate reuse.
    std::vector<double>& fresh_res = delta.residuals[i];
    fresh_res.assign(fresh.machines.size() * num_resources, 0.0);
    const bool res_known =
        cache.residuals.size() == fresh_res.size();
    for (size_t j = 0; j < fresh.machines.size(); ++j) {
      const int m = fresh.machines[j];
      const Machine& machine = cluster.machine(m);
      std::vector<double> used(num_resources, 0.0);
      for (const auto& [s, count] : current.ServicesOn(m)) {
        if (crucial[s]) continue;
        const Service& svc = cluster.service(s);
        for (int r = 0; r < num_resources; ++r) {
          used[r] += count * svc.request[r];
        }
      }
      for (int r = 0; r < num_resources; ++r) {
        const double res = machine.capacity[r] - used[r];
        fresh_res[j * num_resources + r] = res;
        if (!res_known) {
          dirty = true;
          continue;
        }
        const double old = cache.residuals[j * num_resources + r];
        const double slack =
            options.residual_tolerance * std::max(machine.capacity[r], 1e-12);
        if (std::fabs(res - old) > slack) dirty = true;
        if (res > old + 1e-12) delta.residual_increased[i] = 1;
      }
    }

    if (dirty) {
      delta.dirty[i] = 1;
      ++delta.num_dirty;
      dirty_internal += fresh.internal_affinity;
    }
  }

  delta.dirty_affinity_fraction =
      total_internal > 0.0 ? dirty_internal / total_internal
                           : (delta.num_dirty > 0 ? 1.0 : 0.0);
  if (delta.dirty_affinity_fraction >= options.full_resolve_fraction) {
    delta.full_resolve = true;
    delta.reason = "drift-threshold";
  }
  return delta;
}

void RebaseIncrementalState(const Cluster& cluster, const Placement& live,
                            IncrementalState* state) {
  if (!state->valid || state->num_services != cluster.num_services() ||
      state->num_machines != cluster.num_machines() ||
      state->num_resources != cluster.num_resources()) {
    return;
  }
  const int num_resources = cluster.num_resources();
  std::vector<char> crucial(cluster.num_services(), 0);
  for (const SubproblemCache& cache : state->subproblems) {
    for (int s : cache.subproblem.services) crucial[s] = 1;
  }
  for (SubproblemCache& cache : state->subproblems) {
    const Subproblem& sp = cache.subproblem;
    std::vector<double> fresh(sp.machines.size() * num_resources, 0.0);
    for (size_t j = 0; j < sp.machines.size(); ++j) {
      const Machine& machine = cluster.machine(sp.machines[j]);
      std::vector<double> used(num_resources, 0.0);
      for (const auto& [s, count] : live.ServicesOn(sp.machines[j])) {
        if (crucial[s]) continue;
        const Service& svc = cluster.service(s);
        for (int r = 0; r < num_resources; ++r) {
          used[r] += count * svc.request[r];
        }
      }
      for (int r = 0; r < num_resources; ++r) {
        fresh[j * num_resources + r] = machine.capacity[r] - used[r];
      }
    }
    if (cache.residuals.size() == fresh.size()) {
      for (size_t k = 0; k < fresh.size(); ++k) {
        // The solve's bound assumed at most `residuals[k]` of headroom; more
        // room means a re-solve could beat the bound, so it no longer
        // certifies a reused term.
        if (fresh[k] > cache.residuals[k] + 1e-12) {
          cache.tightened = false;
          break;
        }
      }
    } else {
      cache.tightened = false;
    }
    cache.residuals = std::move(fresh);
  }
}

void EncodeIncrementalState(std::ostream& os, const IncrementalState& state) {
  std::ostringstream body;
  body.precision(17);
  body << "incstate-v1 " << (state.valid ? 1 : 0) << ' '
       << state.structure_signature << ' ' << state.num_services << ' '
       << state.num_machines << ' ' << state.num_resources << ' '
       << state.master_ratio << ' ' << state.master_affinity << ' '
       << state.subproblems.size();
  for (const SubproblemCache& cache : state.subproblems) {
    const Subproblem& sp = cache.subproblem;
    body << " sp " << sp.services.size();
    for (int s : sp.services) body << ' ' << s;
    body << ' ' << sp.machines.size();
    for (int m : sp.machines) body << ' ' << m;
    body << ' ' << sp.internal_affinity << ' ' << sp.edges.size();
    for (const AffinityEdge& e : sp.edges) {
      body << ' ' << e.u << ' ' << e.v << ' ' << e.weight;
    }
    body << ' ' << cache.assignments.size();
    for (const SubproblemSolution::Assignment& a : cache.assignments) {
      body << ' ' << a.service << ' ' << a.machine << ' ' << a.count;
    }
    body << ' ' << cache.unplaced << ' ' << cache.realized << ' '
         << cache.bound << ' ' << (cache.tightened ? 1 : 0) << ' '
         << cache.bound_source << ' ' << cache.algorithm << ' '
         << (cache.used_secondary ? 1 : 0) << ' '
         << (cache.fell_to_greedy ? 1 : 0) << ' ' << cache.ladder_rung << ' '
         << cache.residuals.size();
    for (double r : cache.residuals) body << ' ' << r;
  }
  os << body.str();
}

StatusOr<IncrementalState> DecodeIncrementalState(std::istream& is) {
  std::string magic;
  if (!(is >> magic) || magic != "incstate-v1") {
    return InvalidArgumentError("bad incremental state header");
  }
  IncrementalState state;
  int valid = 0;
  size_t num_sp = 0;
  if (!(is >> valid >> state.structure_signature >> state.num_services >>
        state.num_machines >> state.num_resources >> state.master_ratio >>
        state.master_affinity >> num_sp)) {
    return InvalidArgumentError("truncated incremental state header");
  }
  state.valid = valid != 0;
  if (num_sp > static_cast<size_t>(state.num_services) + 1) {
    return InvalidArgumentError("incremental state subproblem count invalid");
  }
  state.subproblems.resize(num_sp);
  for (SubproblemCache& cache : state.subproblems) {
    std::string tag;
    if (!(is >> tag) || tag != "sp") {
      return InvalidArgumentError("bad incremental state subproblem tag");
    }
    Subproblem& sp = cache.subproblem;
    size_t count = 0;
    if (!(is >> count) || count > static_cast<size_t>(state.num_services)) {
      return InvalidArgumentError("bad incremental state service count");
    }
    sp.services.resize(count);
    for (int& s : sp.services) {
      if (!(is >> s)) return InvalidArgumentError("truncated services");
    }
    if (!(is >> count) || count > static_cast<size_t>(state.num_machines)) {
      return InvalidArgumentError("bad incremental state machine count");
    }
    sp.machines.resize(count);
    for (int& m : sp.machines) {
      if (!(is >> m)) return InvalidArgumentError("truncated machines");
    }
    if (!(is >> sp.internal_affinity >> count)) {
      return InvalidArgumentError("truncated subproblem affinity");
    }
    if (count > sp.services.size() * sp.services.size()) {
      return InvalidArgumentError("bad incremental state edge count");
    }
    sp.edges.resize(count);
    for (AffinityEdge& e : sp.edges) {
      if (!(is >> e.u >> e.v >> e.weight)) {
        return InvalidArgumentError("truncated edges");
      }
    }
    if (!(is >> count) ||
        count > sp.services.size() * (sp.machines.size() + 1)) {
      return InvalidArgumentError("bad incremental state assignment count");
    }
    cache.assignments.resize(count);
    for (SubproblemSolution::Assignment& a : cache.assignments) {
      if (!(is >> a.service >> a.machine >> a.count)) {
        return InvalidArgumentError("truncated assignments");
      }
    }
    int tightened = 0, used_secondary = 0, fell = 0;
    if (!(is >> cache.unplaced >> cache.realized >> cache.bound >>
          tightened >> cache.bound_source >> cache.algorithm >>
          used_secondary >> fell >> cache.ladder_rung >> count)) {
      return InvalidArgumentError("truncated subproblem outcome");
    }
    cache.tightened = tightened != 0;
    cache.used_secondary = used_secondary != 0;
    cache.fell_to_greedy = fell != 0;
    const size_t expect =
        sp.machines.size() * static_cast<size_t>(state.num_resources);
    if (count != expect) {
      return InvalidArgumentError("bad incremental state residual count");
    }
    cache.residuals.resize(count);
    for (double& r : cache.residuals) {
      if (!(is >> r)) return InvalidArgumentError("truncated residuals");
    }
  }
  return state;
}

std::string EncodeIncrementalStateString(const IncrementalState& state) {
  std::ostringstream os;
  EncodeIncrementalState(os, state);
  return os.str();
}

StatusOr<IncrementalState> DecodeIncrementalStateString(
    const std::string& text) {
  std::istringstream is(text);
  return DecodeIncrementalState(is);
}

}  // namespace rasa
