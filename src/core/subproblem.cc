#include "core/subproblem.h"

#include <algorithm>
#include <unordered_map>

namespace rasa {

void PopulateSubproblemEdges(const Cluster& cluster, Subproblem& subproblem) {
  subproblem.edges.clear();
  subproblem.internal_affinity = 0.0;
  std::unordered_map<int, int> member;
  member.reserve(subproblem.services.size() * 2);
  for (size_t i = 0; i < subproblem.services.size(); ++i) {
    member[subproblem.services[i]] = static_cast<int>(i);
  }
  for (int s : subproblem.services) {
    for (const auto& [nbr, w] : cluster.affinity().Neighbors(s)) {
      if (nbr <= s) continue;  // visit each undirected edge once
      if (member.count(nbr) == 0) continue;
      subproblem.edges.push_back({s, nbr, w});
      subproblem.internal_affinity += w;
    }
  }
}

double ResidualCapacity(const Cluster& cluster, const Placement& base,
                        int machine, int r) {
  return cluster.machine(machine).capacity[r] - base.UsedResource(machine, r);
}

int ResidualRuleLimit(const Cluster& cluster, const Placement& base,
                      int machine, int rule) {
  return cluster.anti_affinity()[rule].max_per_machine -
         base.RuleCount(machine, rule);
}

double SubproblemGainedAffinity(const Cluster& cluster,
                                const Subproblem& subproblem,
                                const std::vector<std::vector<int>>& x) {
  std::unordered_map<int, int> local_of;
  local_of.reserve(subproblem.services.size() * 2);
  for (size_t i = 0; i < subproblem.services.size(); ++i) {
    local_of[subproblem.services[i]] = static_cast<int>(i);
  }
  const int M = static_cast<int>(subproblem.machines.size());
  double total = 0.0;
  for (const AffinityEdge& e : subproblem.edges) {
    const int lu = local_of[e.u];
    const int lv = local_of[e.v];
    const int du = cluster.service(e.u).demand;
    const int dv = cluster.service(e.v).demand;
    if (du <= 0 || dv <= 0) continue;
    double ratio = 0.0;
    for (int m = 0; m < M; ++m) {
      const int xu = x[lu][m];
      const int xv = x[lv][m];
      if (xu == 0 || xv == 0) continue;
      ratio += std::min(static_cast<double>(xu) / du,
                        static_cast<double>(xv) / dv);
    }
    total += e.weight * std::min(ratio, 1.0);
  }
  return total;
}

}  // namespace rasa
