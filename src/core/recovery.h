#ifndef RASA_CORE_RECOVERY_H_
#define RASA_CORE_RECOVERY_H_

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/generator.h"
#include "cluster/placement.h"
#include "common/durable_io.h"
#include "common/statusor.h"
#include "core/delta.h"
#include "core/migration.h"

namespace rasa {

/// Durable state of the periodic control loop (see DESIGN.md "Durability &
/// recovery"). A state directory holds:
///   - `checkpoint` / `checkpoint.prev`: versioned, CRC-checksummed cycle
///     boundary snapshots (written crash-atomically, rotated so one torn
///     write never loses both);
///   - `journal.wal`: the append-only migration write-ahead journal. Every
///     record is framed + fsync'd; an intent record precedes each mutation
///     of the live cluster (migration batch, drift) and a commit record
///     follows, so recovery can classify every in-flight command as
///     applied / not-applied / torn and roll the interrupted work forward.

// ---------------------------------------------------------------------------
// Checkpoints

/// Aggregate workflow counters carried across a resume (the persistent part
/// of WorkflowReport).
struct WorkflowCounters {
  int executions = 0;
  int dry_runs = 0;
  int rollbacks = 0;
  int solver_failures = 0;
  int partial_executions = 0;
  int commands_failed = 0;
  int command_retries = 0;
  int replans = 0;
  int sla_violations = 0;
  int feasibility_violations = 0;
  int faults_injected = 0;
  int cordons_fired = 0;
};

/// Condensed flight-recorder state of the last completed optimizer run,
/// checkpointed so an operator inspecting a crashed deployment still sees
/// what quality the loop was delivering.
struct LedgerSummary {
  int subproblems = 0;
  int solver_failures = 0;
  int greedy_fallbacks = 0;
  int secondary_successes = 0;
  double certificate_gap = 0.0;
};

/// Everything needed to restart the control loop at a cycle boundary: the
/// collected snapshot of record (base cluster + live placement, layered on
/// cluster/serialization), the workflow RNG state, rollback cooldowns, and
/// the aggregate counters.
struct WorkflowCheckpoint {
  int next_cycle = 0;
  std::string rng_state;  // Rng::SerializeState form
  std::vector<int> frozen_cooldown;
  WorkflowCounters counters;
  LedgerSummary ledger;
  /// Delta state of the last optimized cycle (incremental mode only;
  /// `incremental.valid` is false otherwise and for checkpoints written
  /// before the field existed — decoding stays backward compatible).
  IncrementalState incremental;
  ClusterSnapshot snapshot;
};

std::string EncodeWorkflowCheckpoint(const WorkflowCheckpoint& checkpoint);
StatusOr<WorkflowCheckpoint> DecodeWorkflowCheckpoint(const std::string& text);

/// Writes the checkpoint crash-atomically, rotating the previous one to
/// `checkpoint.prev` first so recovery survives even a torn current file.
Status SaveWorkflowCheckpoint(const std::string& state_dir,
                              const WorkflowCheckpoint& checkpoint);

struct LoadedCheckpoint {
  WorkflowCheckpoint checkpoint;
  /// The current file was torn/corrupt and `checkpoint.prev` was used; the
  /// journal replays the missing cycle forward.
  bool used_previous = false;
};

/// Loads the newest intact checkpoint. kNotFound when neither file exists;
/// kFailedPrecondition when both exist but neither verifies.
StatusOr<LoadedCheckpoint> LoadWorkflowCheckpoint(const std::string& state_dir);

// ---------------------------------------------------------------------------
// The migration write-ahead journal

enum class JournalRecordType {
  kCycleStart,     // cycle began; carries the RNG state at its start
  kDecisionDry,    // cycle decided to dry-run (incl. solver failure)
  kDecisionRollback,  // cycle rolled back; carries the frozen services
  kPlan,           // execution intent: target placement + full batch list
  kBatchIntent,    // about to execute one batch (exact commands)
  kBatchCommit,    // that batch completed and passed its audit
  kExecDone,       // execution finished (counters)
  kDriftIntent,    // about to apply inter-cycle drift (exact moves)
  kIncrementalState,  // delta state after the cycle's optimizer run
};

const char* JournalRecordTypeToString(JournalRecordType type);

/// Why a cycle dry-ran (kDecisionDry payload).
enum class DryReason { kBelowThreshold = 0, kSolverFailed = 1, kInvalidPlan = 2 };

/// One exogenous drift relocation: one container of `service` moved
/// `from` -> `to`.
struct DriftMove {
  int service = 0;
  int from = 0;
  int to = 0;
};

/// One journal record. Only the fields of the record's type are meaningful
/// (see the per-type comments).
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kCycleStart;
  int cycle = 0;
  /// RNG state at the record's position in the draw sequence (kCycleStart:
  /// cycle start; decisions/kPlan: after all of the cycle's pre-execution
  /// draws; kDriftIntent: after the drift draws).
  std::string rng_state;
  DryReason dry_reason = DryReason::kBelowThreshold;     // kDecisionDry
  std::vector<int> frozen_services;                      // kDecisionRollback
  uint64_t exec_seed = 0;                                // kPlan
  double predicted_affinity = 0.0;                       // kPlan
  /// kPlan: the full target placement as (machine, service, count) triplets.
  std::vector<std::array<int, 3>> target;
  std::vector<std::vector<MigrationCommand>> batches;    // kPlan
  int batch = -1;                     // kBatchIntent / kBatchCommit
  std::vector<MigrationCommand> commands;                // kBatchIntent
  // kExecDone:
  bool reached_target = false;
  int batches_executed = 0;
  int commands_succeeded = 0;
  int commands_failed = 0;
  int retries = 0;
  int replans = 0;
  int sla_violations = 0;
  int feasibility_violations = 0;
  std::vector<DriftMove> moves;                          // kDriftIntent
  /// kIncrementalState: EncodeIncrementalStateString form of the delta
  /// state after this cycle's optimizer run. Appended before the cycle's
  /// decision record, so a journaled decision implies the state that
  /// produced it is durable and `--resume` replays incremental cycles
  /// bit-identically.
  std::string incremental_state;
};

std::string EncodeJournalRecord(const JournalRecord& record);
StatusOr<JournalRecord> DecodeJournalRecord(const std::string& payload);

/// Append handle on the journal. Every Append is framed, CRC'd and fsync'd
/// before returning (see common/durable_io), so an acknowledged record is
/// durable and a crash mid-append leaves a detectable torn tail.
class WorkflowJournal {
 public:
  static StatusOr<WorkflowJournal> Open(const std::string& state_dir);
  Status Append(const JournalRecord& record);
  const std::string& path() const { return log_.path(); }

 private:
  DurableLogWriter log_;
};

struct JournalScan {
  std::vector<JournalRecord> records;
  bool torn_tail = false;
  std::string torn_reason;
};

/// Reads every intact journal record; a torn tail is reported, not fatal
/// (recovery treats it as "the last append never happened"). kNotFound when
/// no journal exists.
StatusOr<JournalScan> ReadWorkflowJournal(const std::string& state_dir);

// ---------------------------------------------------------------------------
// Recovery analysis

/// Journal records of one cycle, digested for recovery.
struct CycleJournal {
  bool started = false;
  enum class Decision { kNone, kDry, kRollback, kExecute } decision =
      Decision::kNone;
  JournalRecord decision_record;  // kDry / kRollback
  bool have_plan = false;
  JournalRecord plan;
  /// Batch intents in ordinal order (explicit commands, so recovery does
  /// not depend on re-deriving the plan).
  std::map<int, JournalRecord> batch_intents;
  std::set<int> batch_commits;
  bool exec_done = false;
  JournalRecord exec_record;
  bool drift_started = false;
  JournalRecord drift_record;
  bool has_incremental = false;
  JournalRecord incremental_record;  // kIncrementalState
};

/// The full recovery picture of a state directory: the newest intact
/// checkpoint plus the journal digests of every cycle at or after it.
struct RecoveryAnalysis {
  WorkflowCheckpoint checkpoint;
  bool used_previous_checkpoint = false;
  bool journal_torn_tail = false;
  std::string torn_reason;
  /// Cycles with journal activity >= checkpoint.next_cycle, i.e. work the
  /// checkpoint does not yet cover. Empty = clean shutdown.
  std::map<int, CycleJournal> cycles;
};

/// Loads checkpoint + journal and digests them. Fails only when no usable
/// checkpoint exists; journal damage degrades to a torn-tail note.
StatusOr<RecoveryAnalysis> AnalyzeWorkflowState(const std::string& state_dir);

/// How recovery classified one journaled in-flight command (the ISSUE's
/// applied / not-applied / torn trichotomy). kTorn marks commands whose
/// intent/commit records were lost to a torn journal tail — their fate is
/// recovered from the observed placement instead of the journal.
enum class CommandFate { kApplied, kNotApplied, kTorn };

struct CommandClassification {
  int batch = 0;
  MigrationCommand command;
  CommandFate fate = CommandFate::kNotApplied;
};

/// Classifies every command of an interrupted execution against the
/// observed placement: committed batches are kApplied; the in-flight batch
/// is split applied/not-applied by longest-prefix simulation from
/// `cycle_start`; batches whose records fell into a torn tail are kTorn.
std::vector<CommandClassification> ClassifyInFlightCommands(
    const Cluster& cluster, const CycleJournal& cycle_journal,
    const Placement& cycle_start, const Placement& observed,
    bool journal_torn_tail);

/// What recovery did (surfaced through WorkflowReport::recovery and the
/// `rasa_cli recover` inspection).
struct RecoveryStats {
  bool recovered = false;
  bool used_previous_checkpoint = false;
  bool journal_torn_tail = false;
  int commands_applied_pre_crash = 0;
  int commands_not_applied = 0;
  int commands_torn = 0;
  int commands_rolled_forward = 0;
  int batches_rolled_forward = 0;
  int drift_moves_rolled_forward = 0;
  /// Roll-forward could not match any prefix of the journaled intent (e.g.
  /// chaos drifted the world behind the journal's back) and fell back to
  /// reconciling the observed placement straight to the intended end state.
  int phases_abandoned = 0;
  int cycles_completed_from_journal = 0;
};

struct RollForwardResult {
  bool reached_target = false;
  bool abandoned = false;
  int commands_pre_applied = 0;
  int commands_rolled_forward = 0;
  int batches_rolled_forward = 0;
  int sla_violations = 0;
  int feasibility_violations = 0;
};

/// Rolls an interrupted execution forward: verifies committed batches,
/// finds the applied prefix of the in-flight batch, applies the remaining
/// commands batch-by-batch (re-running the SLA/feasibility audit after each
/// batch), and — when the observed world cannot be matched to any prefix —
/// abandons the journaled path and reconciles `observed` directly to the
/// journaled target (removals before additions, so capacity feasibility is
/// never transiently violated). When `journal` is non-null the missing
/// batch commits and the exec-done record are appended, restoring the
/// invariant that a completed cycle is fully journaled.
StatusOr<RollForwardResult> RollForwardExecution(
    const Cluster& cluster, const CycleJournal& cycle_journal,
    const Placement& cycle_start, Placement& observed,
    double min_alive_fraction, WorkflowJournal* journal);

/// Rolls an interrupted drift forward: finds the applied prefix of `moves`
/// against `observed` (starting from `pre_drift`) and applies the rest.
/// Returns the number of moves applied now; -1 signals the observed state
/// matched no prefix (the world is accepted as-is).
int RollForwardDrift(const Cluster& cluster,
                     const std::vector<DriftMove>& moves,
                     const Placement& pre_drift, Placement& observed);

/// Reconstructs the live placement a restarted controller should assume
/// when the real cluster cannot be queried (the CLI's simulated world):
/// checkpoint placement + every committed batch + nothing in flight.
StatusOr<Placement> ReconstructObservedPlacement(
    const RecoveryAnalysis& analysis);

/// Human-readable dump of a state directory (the `rasa_cli recover`
/// subcommand): checkpoint summary, journal record list, and the
/// classification table of any in-flight work.
StatusOr<std::string> FormatRecoveryInspection(const std::string& state_dir);

}  // namespace rasa

#endif  // RASA_CORE_RECOVERY_H_
