#ifndef RASA_CORE_SOLVE_LEDGER_H_
#define RASA_CORE_SOLVE_LEDGER_H_

#include <mutex>
#include <vector>

#include "core/algorithm_pool.h"
#include "core/selector.h"

namespace rasa {

/// Outcome of one rung of the degradation ladder for a subproblem.
enum class AttemptOutcome {
  kNotRun,   // the ladder never reached this rung
  kOk,       // solver returned a solution
  kFailed,   // solver ran and failed (OOT / infeasible model / error)
  kExpired,  // global budget was gone before the attempt
  kPruned,   // skipped by an open circuit breaker
};

const char* AttemptOutcomeToString(AttemptOutcome outcome);

/// One solver attempt as recorded by the flight recorder: which algorithm
/// ran on which rung, how it ended, and its full introspection
/// (observation-only; nothing here ever feeds back into the solve).
struct SolveAttempt {
  PoolAlgorithm algorithm = PoolAlgorithm::kCg;
  AttemptOutcome outcome = AttemptOutcome::kNotRun;
  double seconds = 0.0;
  /// At most one of the two is populated, matching `algorithm`, and only
  /// when the solver actually ran.
  bool has_cg = false;
  CgStats cg;
  bool has_mip = false;
  SubproblemMipStats mip;
};

/// Flight-recorder entry for one per-subproblem solve: everything needed to
/// reconstruct why the ladder ended where it did and what quality bound the
/// solvers proved. Assembled by the merge phase in canonical solve order,
/// so the sequence is bit-identical at every thread count.
struct LedgerRecord {
  int subproblem = 0;  // global subproblem index
  int position = 0;    // canonical solve position (0 = highest affinity)
  int num_services = 0;
  int num_machines = 0;
  double internal_affinity = 0.0;

  /// Why the primary algorithm was chosen.
  SelectorPolicy selector_policy = SelectorPolicy::kHeuristic;
  PoolAlgorithm selected = PoolAlgorithm::kCg;

  /// Ladder rungs in order, as the canonical replay decided them (a rung
  /// the replayed breaker skipped records kPruned even if a worker ran it
  /// speculatively, so the sequence is scheduling-independent). The rare
  /// merge-phase secondary re-solve (advisory breaker diverged from the
  /// replayed one) lands in `secondary` like any other secondary attempt.
  SolveAttempt primary;
  SolveAttempt secondary;

  /// Final rung the subproblem landed on: 0 = primary, 1 = secondary,
  /// 2 = greedy fallback.
  int ladder_rung = 0;
  bool used_secondary = false;
  bool fell_to_greedy = false;
  /// Incremental path only: no solver ran this run — the previous cycle's
  /// solution was re-applied verbatim (ladder fields echo that solve; both
  /// attempts read kNotRun).
  bool reused = false;

  double budget_seconds = 0.0;  // primary's reserved budget share
  double seconds = 0.0;         // wall-clock of the speculative solve

  /// What the winning rung realized inside the subproblem.
  double realized_affinity = 0.0;
  int unplaced_containers = 0;

  /// This subproblem's term in the cluster optimality-gap certificate:
  /// min(internal_affinity, proven solver bound) — see explain.h for when
  /// tightening below internal_affinity is sound.
  double certificate_bound = 0.0;
  bool bound_tightened = false;
};

/// Process-wide, thread-safe flight recorder for per-subproblem solves.
/// Appending is cheap (one mutex, records are moved in); readers snapshot.
/// Strictly observation-only: with the ledger disabled the optimizer's
/// placements and reports are bit-identical (enforced by
/// explain_determinism_test).
class SolveLedger {
 public:
  static SolveLedger& Default();

  void Append(LedgerRecord record);
  void AppendAll(const std::vector<LedgerRecord>& records);

  /// Snapshot of all records appended so far (copy; safe to hold).
  std::vector<LedgerRecord> Records() const;
  size_t size() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<LedgerRecord> records_;
};

/// Global enable switch (default on). Disabling stops the optimizer from
/// appending to SolveLedger::Default(); RasaResult::report is populated
/// either way — it is part of the result, not the recorder.
void SetSolveLedgerEnabled(bool enabled);
bool SolveLedgerEnabled();

}  // namespace rasa

#endif  // RASA_CORE_SOLVE_LEDGER_H_
