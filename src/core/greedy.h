#ifndef RASA_CORE_GREEDY_H_
#define RASA_CORE_GREEDY_H_

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "core/subproblem.h"

namespace rasa {

/// Affinity-aware greedy packing of a subproblem: services are processed in
/// decreasing internal-affinity order and every container goes to the
/// feasible subproblem machine with the largest marginal gained-affinity
/// (ties broken toward emptier machines). Used as the MIP warm start, the
/// CG seed patterns, and the fallback when solvers fail.
///
/// `working` must contain the base placement (trivial residents); placed
/// containers are added to it. Returns the solution in subproblem terms.
SubproblemSolution GreedyAffinityPlace(const Cluster& cluster,
                                       const Subproblem& subproblem,
                                       Placement& working);

/// Marginal gained affinity (over `subproblem.edges`) of adding one
/// container of `service` to `machine` given current counts in `working`.
double MarginalGain(const Cluster& cluster, const Subproblem& subproblem,
                    const Placement& working, int service, int machine);

}  // namespace rasa

#endif  // RASA_CORE_GREEDY_H_
