#ifndef RASA_CORE_OBJECTIVE_H_
#define RASA_CORE_OBJECTIVE_H_

#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"

namespace rasa {

/// Gained affinity of a single service pair on one machine (Definition 1):
///   a_{s,s',m} = w * min(x_{s,m}/d_s, x_{s',m}/d_{s'}).
/// Services with zero demand contribute nothing.
double PairGainedAffinityOnMachine(const Cluster& cluster,
                                   const Placement& placement, int s,
                                   int s_prime, double weight, int machine);

/// Localized traffic ratio of edge (s, s'): sum over machines of
/// min(x_{s,m}/d_s, x_{s',m}/d_{s'}) in [0, 1]. The fraction of this pair's
/// traffic that stays on-machine (the red dashed share of Fig. 2).
double PairLocalizationRatio(const Cluster& cluster,
                             const Placement& placement, int s, int s_prime);

/// Overall gained affinity: the RASA objective (2). With the affinity graph
/// normalized to total weight 1, this lies in [0, 1].
double GainedAffinity(const Cluster& cluster, const Placement& placement);

/// Localization ratio per affinity edge, index-aligned with
/// cluster.affinity().edges(). Used by the production simulator.
std::vector<double> EdgeLocalizationRatios(const Cluster& cluster,
                                           const Placement& placement);

}  // namespace rasa

#endif  // RASA_CORE_OBJECTIVE_H_
