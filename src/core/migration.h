#ifndef RASA_CORE_MIGRATION_H_
#define RASA_CORE_MIGRATION_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/status.h"
#include "common/statusor.h"

namespace rasa {

enum class MigrationCommandType { kDelete, kCreate };

/// One command of a migration path, e.g. (delete, svc-3, m-12).
struct MigrationCommand {
  MigrationCommandType type;
  int service = 0;
  int machine = 0;
};

/// An executable migration path (§IV-E): an ordered list of command sets.
/// Commands inside one set run in parallel on different machines; set i
/// only starts after set i-1 completed.
struct MigrationPlan {
  std::vector<std::vector<MigrationCommand>> batches;
  int total_deletes = 0;
  int total_creates = 0;
  /// Containers the target placement drops entirely (target deploys fewer
  /// than the original); they are deleted in the final batch.
  int stranded_deletes = 0;

  std::string Summary() const;
};

struct MigrationOptions {
  /// SLA floor: every service keeps at least this fraction of its demand
  /// alive after every batch (the paper relaxes SLA to 75%).
  double min_alive_fraction = 0.75;
  /// Safety cap on iterations.
  int max_iterations = 1 << 20;
};

/// The SLA floor enforced between migration batches: the minimum number of
/// containers of a service with `demand` replicas that must stay alive
/// while migrating under `min_alive_fraction`.
///
/// The naive floor ceil(fraction * demand) forbids any migration for small
/// services — ceil(0.75 * d) == d for every d <= 4 — so the floor carries
/// an explicit guaranteed-progress carve-out: like a rolling update, at
/// least one container may always be offline (floor <= demand - 1; never
/// negative). Planner, validator, and executor all share this single
/// definition.
int MinAliveFloor(int demand, double min_alive_fraction);

/// Computes a migration path from `original` to `target` with Algorithm 2:
/// per iteration, each machine deletes the to-be-migrated container whose
/// service has the lowest offline ratio (if SLA allows), then each machine
/// creates the fitting container whose service has the highest offline
/// ratio. Fails with kInternal if the reallocation deadlocks.
StatusOr<MigrationPlan> ComputeMigrationPath(
    const Cluster& cluster, const Placement& original, const Placement& target,
    const MigrationOptions& options = {});

/// Replays `plan` from `original`, verifying after every batch that
/// resources/anti-affinity/schedulability hold and that every service keeps
/// `min_alive_fraction` of its demand alive; verifies the final state
/// equals `target`. Used by tests and the CronJob executor.
Status ValidateMigrationPlan(const Cluster& cluster, const Placement& original,
                             const Placement& target,
                             const MigrationPlan& plan,
                             double min_alive_fraction = 0.75);

}  // namespace rasa

#endif  // RASA_CORE_MIGRATION_H_
