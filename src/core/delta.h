#ifndef RASA_CORE_DELTA_H_
#define RASA_CORE_DELTA_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/statusor.h"
#include "core/partitioning.h"
#include "core/subproblem.h"

namespace rasa {

/// Knobs of the snapshot differ (see DESIGN.md "Incremental
/// re-optimization"). All three are quality/speed trade-offs, not
/// correctness switches: a partition wrongly kept clean still merges its
/// cached assignments CanPlace-guarded and simply forfeits the re-solve
/// (and any certificate tightening), it can never produce an infeasible
/// placement or an unsound bound.
struct DeltaOptions {
  /// Per-edge relative weight drift treated as "unchanged". Kept tight by
  /// default so any real measurement delta re-solves the partition.
  double weight_tolerance = 1e-9;
  /// A machine's residual capacity (after trivial residents) may move by
  /// this fraction of its capacity before the owning partition is dirty.
  /// Sized for container-granularity churn: one relocated container shifts
  /// a typical machine's residual by a few percent of capacity (close to
  /// ten for a big-memory container), so a machine absorbs a handful of
  /// trivial moves before its owner re-solves (the cached assignments
  /// re-apply CanPlace-guarded either way, so this trades solution
  /// freshness, never feasibility).
  double residual_tolerance = 0.15;
  /// When the dirty partitions carry at least this share of the total
  /// internal affinity, reusing the rest is not worth the staleness: fall
  /// back to a full re-partition + resolve.
  double full_resolve_fraction = 0.5;
};

/// Everything the last optimized cycle knew about one subproblem, kept so
/// the next cycle can re-apply the solution verbatim when nothing material
/// changed — and warm-start the solvers when something did.
struct SubproblemCache {
  /// The subproblem as solved: global service/machine ids plus the internal
  /// edges *under the weights of that cycle* (the differ compares them
  /// against the fresh snapshot's weights).
  Subproblem subproblem;
  /// Assignments actually applied by the merge (after CanPlace partial
  /// fits), i.e. the incumbent placement restricted to this subproblem.
  std::vector<SubproblemSolution::Assignment> assignments;
  int unplaced = 0;
  double realized = 0.0;
  /// The certificate term of that solve (bound under the old weights).
  double bound = 0.0;
  bool tightened = false;
  std::string bound_source = "trivial";
  /// Ladder outcome, echoed into reused ledger records.
  int algorithm = 0;  // PoolAlgorithm as int (delta.h stays below the pool)
  bool used_secondary = false;
  bool fell_to_greedy = false;
  int ladder_rung = 0;
  /// Residual capacity of each subproblem machine the solve observed
  /// (base placement = trivial residents only), machine-local-major:
  /// residuals[j * num_resources + r].
  std::vector<double> residuals;
};

/// Checkpointable delta state of the control loop: the last optimized
/// cycle's partitioning and per-subproblem solutions. `valid` is false on a
/// cold start (or after a structural change invalidated the cache).
struct IncrementalState {
  bool valid = false;
  /// Fingerprint of everything the partitioning depends on besides the
  /// placement and edge weights: service demands/requests/platforms,
  /// machine capacities/platforms/specs, anti-affinity rules. A mismatch
  /// invalidates the whole cache (partition structure is void).
  uint64_t structure_signature = 0;
  int num_services = 0;
  int num_machines = 0;
  int num_resources = 0;
  std::vector<SubproblemCache> subproblems;
  /// Partition stats that cannot be re-derived cheaply.
  double master_ratio = 0.0;
  double master_affinity = 0.0;
};

/// FNV-1a fingerprint of the cluster's partition-relevant structure (see
/// IncrementalState::structure_signature). Placement and affinity weights
/// are deliberately excluded — those drift every cycle and are diffed
/// per-partition instead.
uint64_t ClusterStructureSignature(const Cluster& cluster);

/// What the differ decided for one fresh snapshot against the cached state.
struct SnapshotDelta {
  /// The cache cannot (or should not) be reused; `reason` says why
  /// ("structure", "drift-threshold").
  bool full_resolve = false;
  std::string reason;
  /// Per cached subproblem: re-solve it this cycle.
  std::vector<char> dirty;
  /// Per cached subproblem: some machine's residual *grew* since the solve
  /// (within tolerance, or the partition would be dirty). A grown residual
  /// widens the feasible set, so the cached bound no longer certifies a
  /// reused term.
  std::vector<char> residual_increased;
  /// Per cached subproblem: max over internal edges of new/old weight,
  /// floored at 1. Inflates a reused cached bound to stay sound under
  /// (tolerance-small) weight growth.
  std::vector<double> weight_ratio;
  /// The cached subproblems with edges + internal affinity recomputed under
  /// the fresh snapshot's weights (what this cycle's certificate charges).
  std::vector<Subproblem> rebuilt;
  /// Fresh residual capacities per subproblem, same layout as
  /// SubproblemCache::residuals (becomes the next cycle's cache).
  std::vector<std::vector<double>> residuals;
  int num_dirty = 0;
  /// Share of the total internal affinity (fresh weights) on dirty
  /// partitions — the drift measure gating the full-resolve fallback.
  double dirty_affinity_fraction = 0.0;
};

/// Re-bases the cached residuals on the placement the control loop actually
/// ended the cycle with. The optimizer captures residuals as the solvers
/// observed them (pre local search), but the adopted placement may differ —
/// local search relocates trivial containers, executions go partial, plans
/// roll back — and every such delta would read as spurious drift next
/// cycle. Where the live residual *grew* past what the solve observed the
/// cached bound is demoted (`tightened` cleared): a wider feasible set
/// voids the certificate, and the next diff can only compare against the
/// re-based values. No-op when `state` is invalid or shaped for a different
/// cluster.
void RebaseIncrementalState(const Cluster& cluster, const Placement& live,
                            IncrementalState* state);

/// Diffs a fresh snapshot (measured cluster + live placement) against the
/// last optimized state. Marks a cached partition dirty when its internal
/// edge set changed, any internal weight moved relatively more than
/// `weight_tolerance`, or any of its machines' residual capacity (after
/// trivial residents) moved more than `residual_tolerance` of capacity.
/// Never inspects where the *crucial* containers currently sit: the cached
/// assignments replace them wholesale, so their drift is repaired for free.
SnapshotDelta DiffSnapshot(const Cluster& cluster, const Placement& current,
                           const IncrementalState& state,
                           const DeltaOptions& options);

/// A ready-to-execute incremental solve: the rebuilt partition plus, per
/// subproblem, whether the cached solution is reused verbatim or the
/// subproblem is re-solved warm-started from `hint` (the prior incumbent =
/// base placement + cached assignments). Built by RasaOptimizer::
/// the incremental Optimize path from a SnapshotDelta; `cache` and `hint`
/// must outlive the solve.
struct DeltaPlan {
  PartitionResult partition;
  /// Per subproblem (cache/partition index): skip the solvers, re-apply the
  /// cached assignments in the merge.
  std::vector<char> reuse;
  std::vector<char> residual_increased;
  std::vector<double> weight_ratio;
  const IncrementalState* cache = nullptr;
  const Placement* hint = nullptr;
};

/// Token encoding (whitespace-separated, self-framing, precision 17) so the
/// state embeds in journal records and checkpoint sections and `--resume`
/// replays bit-identically. Decode consumes exactly the tokens Encode
/// produced and leaves the stream at the next token.
void EncodeIncrementalState(std::ostream& os, const IncrementalState& state);
StatusOr<IncrementalState> DecodeIncrementalState(std::istream& is);

std::string EncodeIncrementalStateString(const IncrementalState& state);
StatusOr<IncrementalState> DecodeIncrementalStateString(
    const std::string& text);

}  // namespace rasa

#endif  // RASA_CORE_DELTA_H_
