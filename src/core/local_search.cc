#include "core/local_search.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "core/objective.h"

namespace rasa {
namespace {

// Gained-affinity change from adding (sign=+1) or removing (sign=-1) one
// container of `service` on `machine`, given current counts.
double DeltaOne(const Cluster& cluster, const Placement& placement,
                int service, int machine, int sign) {
  const int d_s = cluster.service(service).demand;
  if (d_s <= 0) return 0.0;
  const int x_s = placement.CountOn(machine, service);
  const int x_after = x_s + sign;
  double delta = 0.0;
  for (const auto& [nbr, w] : cluster.affinity().Neighbors(service)) {
    const int d_n = cluster.service(nbr).demand;
    if (d_n <= 0) continue;
    const int x_n = placement.CountOn(machine, nbr);
    if (x_n == 0) continue;
    const double before = std::min(static_cast<double>(x_s) / d_s,
                                   static_cast<double>(x_n) / d_n);
    const double after = std::min(static_cast<double>(x_after) / d_s,
                                  static_cast<double>(x_n) / d_n);
    delta += w * (after - before);
  }
  return delta;
}

// Exact objective contribution of every edge incident to `s` or `t`
// (deduplicated). Only these edges can change when containers of s and t
// move, so before/after differences of this sum are exact swap deltas.
double IncidentObjective(const Cluster& cluster, const Placement& placement,
                         int s, int t) {
  double total = 0.0;
  for (const auto& [nbr, w] : cluster.affinity().Neighbors(s)) {
    total += w * PairLocalizationRatio(cluster, placement, s, nbr);
  }
  for (const auto& [nbr, w] : cluster.affinity().Neighbors(t)) {
    if (nbr == s) continue;  // edge (s, t) already counted above
    total += w * PairLocalizationRatio(cluster, placement, t, nbr);
  }
  return total;
}

}  // namespace

LocalSearchStats RefinePlacement(const Cluster& cluster, Placement& placement,
                                 const LocalSearchOptions& options) {
  LocalSearchStats stats;
  constexpr double kTol = 1e-12;

  // Candidate services, heaviest affinity first.
  std::vector<int> services;
  for (int s = 0; s < cluster.num_services(); ++s) {
    if (!options.affinity_services_only ||
        cluster.affinity().Degree(s) > 0) {
      services.push_back(s);
    }
  }
  std::sort(services.begin(), services.end(), [&](int a, int b) {
    return cluster.affinity().TotalAffinityOf(a) >
           cluster.affinity().TotalAffinityOf(b);
  });

  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++stats.passes;
    bool improved = false;
    for (int s : services) {
      if (options.deadline.Expired()) {
        stats.hit_deadline = true;
        return stats;
      }
      // Snapshot the hosting machines (mutated during the loop).
      std::vector<int> hosts;
      for (const auto& [m, count] : placement.MachinesOf(s)) hosts.push_back(m);
      for (int from : hosts) {
        if (placement.CountOn(from, s) == 0) continue;
        const double removal_loss = -DeltaOne(cluster, placement, s, from, -1);
        // Best destination by move delta; remember the best capacity-blocked
        // destination for the swap fallback.
        int best_to = -1;
        double best_delta = kTol;
        int blocked_to = -1;
        double blocked_delta = kTol;
        for (int to = 0; to < cluster.num_machines(); ++to) {
          if (to == from || !cluster.CanHost(to, s)) continue;
          const double delta =
              DeltaOne(cluster, placement, s, to, +1) - removal_loss;
          if (delta <= kTol) continue;
          if (placement.CanPlace(to, s)) {
            if (delta > best_delta) {
              best_delta = delta;
              best_to = to;
            }
          } else if (options.enable_swaps && delta > blocked_delta) {
            blocked_delta = delta;
            blocked_to = to;
          }
        }
        if (best_to >= 0) {
          RASA_CHECK(placement.Remove(from, s).ok());
          placement.Add(best_to, s);
          ++stats.moves_applied;
          stats.gain += best_delta;
          improved = true;
          continue;
        }
        if (blocked_to < 0) continue;

        // Swap fallback: evict one resident container from the blocked
        // target onto `from` (whose capacity the departing container
        // frees), measuring the exact delta over the affected edges.
        const int to = blocked_to;
        std::vector<int> residents;
        for (const auto& [t, count] : placement.ServicesOn(to)) {
          (void)count;
          if (t != s && cluster.CanHost(from, t)) residents.push_back(t);
        }
        for (int t : residents) {
          const double before = IncidentObjective(cluster, placement, s, t);
          RASA_CHECK(placement.Remove(from, s).ok());
          RASA_CHECK(placement.Remove(to, t).ok());
          if (!placement.CanPlace(to, s) || !placement.CanPlace(from, t)) {
            placement.Add(from, s);
            placement.Add(to, t);
            continue;
          }
          placement.Add(to, s);
          placement.Add(from, t);
          const double after = IncidentObjective(cluster, placement, s, t);
          if (after - before > kTol) {
            ++stats.swaps_applied;
            stats.gain += after - before;
            improved = true;
            break;
          }
          // Revert.
          RASA_CHECK(placement.Remove(to, s).ok());
          RASA_CHECK(placement.Remove(from, t).ok());
          placement.Add(from, s);
          placement.Add(to, t);
        }
      }
    }
    if (!improved) break;
  }
  return stats;
}

}  // namespace rasa
