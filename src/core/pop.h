#ifndef RASA_CORE_POP_H_
#define RASA_CORE_POP_H_

#include <cstdint>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/statusor.h"
#include "common/timer.h"
#include "core/algorithm_pool.h"
#include "core/subproblem.h"

namespace rasa {

/// POP-style replica splitting for oversized subproblems (after Narayanan
/// et al., "Solving Large-Scale Granular Resource Allocation Problems
/// Efficiently with POP"). When the partitioner hands the pool a
/// subproblem too large for the exact solvers to finish inside its budget
/// slice, the subproblem is split into k random replicas — services dealt
/// round-robin after a seeded shuffle, machines likewise — each replica is
/// solved with the same pool algorithm, and the per-replica assignments
/// are unioned. Affinity edges crossing replica boundaries are invisible
/// to the replica solvers, so the union is a heuristic: its quality loss
/// is surfaced against the optimality-gap certificate, whose term stays at
/// the trivial bound (source "pop", never tightened).
struct PopOptions {
  /// Subproblems with strictly more services than this are split before
  /// solving. 0 disables POP entirely (the default: the paper-scale tier-1
  /// fixtures never trigger it, so their placements are unchanged).
  int max_services = 0;
  /// Number of replicas of the split (clamped to at least 2 and at most
  /// the subproblem's service/machine counts).
  int num_replicas = 2;
};

/// What one POP split did, surfaced per subproblem in SubproblemReport.
struct PopStats {
  /// Replicas the subproblem was actually split into (0 = POP not used).
  int replicas = 0;
  /// Total weight of affinity edges crossing replica boundaries: the
  /// affinity the replica solvers could not see. An a-priori upper bound
  /// on the quality this split gives up versus an exact solve.
  double cut_affinity = 0.0;
};

/// True when `options` asks for a POP split of `subproblem`.
bool ShouldUsePop(const PopOptions& options, const Subproblem& subproblem);

/// Drop-in replacement for RunPoolAlgorithm that solves `subproblem` via a
/// POP replica split. Deterministic for a fixed `seed`: the split and every
/// replica solve derive from it alone. Replicas run sequentially in the
/// caller's thread (the caller already occupies a worker slot; nesting
/// into the pool could deadlock). `stats` receives aggregate timing only —
/// never a CG/MIP bound, because replica-local bounds do not bound the
/// full subproblem, keeping the certificate sound by construction. The
/// returned solution's gained_affinity is re-priced over the *full*
/// subproblem's edges, so cross-replica co-location luck is credited.
StatusOr<SubproblemSolution> RunPoolAlgorithmPop(
    PoolAlgorithm algorithm, const Cluster& cluster,
    const Subproblem& subproblem, const Placement& base,
    const Placement& original, const Deadline& deadline, uint64_t seed,
    const PopOptions& options, PoolAttemptStats* stats = nullptr,
    const Placement* mip_incumbent = nullptr, PopStats* pop_stats = nullptr);

}  // namespace rasa

#endif  // RASA_CORE_POP_H_
