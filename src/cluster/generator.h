#ifndef RASA_CLUSTER_GENERATOR_H_
#define RASA_CLUSTER_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/rng.h"
#include "common/statusor.h"

namespace rasa {

/// Parameters of the synthetic trace generator. Defaults reproduce the
/// structural properties measured in the paper: power-law total-affinity
/// skew (Assumption 4.1 / Fig. 5), heterogeneous machine specs, a minority
/// platform for compatibility partitioning, per-service anti-affinity.
struct ClusterSpec {
  std::string name = "cluster";
  int num_services = 200;
  int num_machines = 40;
  /// Target mean containers per service (actual counts are heavy-tailed).
  double containers_per_service = 6.0;
  /// Power-law exponent beta of Assumption 4.1 (must be > 1).
  double affinity_beta = 1.6;
  /// Fraction of services that participate in the affinity graph at all.
  double affinity_fraction = 0.55;
  /// Edges as a multiple of the number of affinity services.
  double edge_factor = 1.3;
  /// Fraction of services (and matching machine capacity) on the minority
  /// platform; drives compatibility partitioning.
  double minority_platform_fraction = 0.15;
  /// Total machine capacity as a multiple of total requested resources.
  double capacity_headroom = 1.45;
  /// Probability that a service gets a service-to-machine anti-affinity
  /// rule limiting containers per machine.
  double anti_affinity_probability = 0.6;
  uint64_t seed = 1;
  /// Exact-total gates for Table II reproduction. When > 0 the generator
  /// deterministically nudges the sampled per-service demands (by +/-1
  /// sweeps in service order) and charges the machine-count rounding
  /// residual to the larger platform so the generated cluster hits these
  /// totals exactly. The MxSpec helpers set them at scale factor 1 only;
  /// scaled-down fixtures (scale > 1) generate byte-identically to before.
  int exact_total_containers = 0;
  int exact_num_machines = 0;
};

/// A generated cluster together with its ORIGINAL-scheduler placement —
/// the "cluster state" snapshot the Data Collector feeds to RASA (§III-A).
/// The cluster lives behind a shared_ptr because Placement objects hold a
/// pointer to it: the snapshot stays safely movable/copyable.
struct ClusterSnapshot {
  std::string name;
  std::shared_ptr<const Cluster> cluster;
  Placement original_placement;
};

/// Generates a cluster from `spec` and places it with the ORIGINAL
/// first-fit/filter-and-score scheduler. Fails only if the generated
/// instance is unschedulable (should not happen with default headroom).
StatusOr<ClusterSnapshot> GenerateCluster(const ClusterSpec& spec);

/// Specs reproducing Table II's four production clusters, linearly scaled
/// down by `scale` (>= 1). scale=1 is the paper's full size; the default
/// used by benches is 16 to fit a single-core machine.
ClusterSpec M1Spec(double scale = 16.0);
ClusterSpec M2Spec(double scale = 16.0);
ClusterSpec M3Spec(double scale = 16.0);
ClusterSpec M4Spec(double scale = 16.0);
/// All four, in order M1..M4.
std::vector<ClusterSpec> TableTwoSpecs(double scale = 16.0);

/// One row of Table II.
struct ClusterScaleStats {
  std::string name;
  int num_services = 0;
  int num_containers = 0;
  int num_machines = 0;
};
ClusterScaleStats ComputeScaleStats(const ClusterSnapshot& snapshot);

}  // namespace rasa

#endif  // RASA_CLUSTER_GENERATOR_H_
