#include "cluster/placement.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace rasa {

Placement::Placement(const Cluster& cluster)
    : cluster_(&cluster),
      by_machine_(cluster.num_machines()),
      by_service_(cluster.num_services()),
      used_(cluster.num_machines(),
            std::vector<double>(cluster.num_resources(), 0.0)),
      total_of_service_(cluster.num_services(), 0),
      containers_on_machine_(cluster.num_machines(), 0) {}

int Placement::CountOn(int machine, int service) const {
  const auto& m = by_machine_[machine];
  auto it = m.find(service);
  return it == m.end() ? 0 : it->second;
}

double Placement::FreeResource(int machine, int r) const {
  return cluster_->machine(machine).capacity[r] - used_[machine][r];
}

void Placement::Add(int machine, int service, int count) {
  RASA_CHECK(count >= 0);
  if (count == 0) return;
  by_machine_[machine][service] += count;
  by_service_[service][machine] += count;
  total_of_service_[service] += count;
  containers_on_machine_[machine] += count;
  const std::vector<double>& req = cluster_->service(service).request;
  for (int r = 0; r < cluster_->num_resources(); ++r) {
    used_[machine][r] += req[r] * count;
  }
}

Status Placement::Remove(int machine, int service, int count) {
  auto it = by_machine_[machine].find(service);
  const int present = it == by_machine_[machine].end() ? 0 : it->second;
  if (present < count) {
    return FailedPreconditionError(StrFormat(
        "cannot remove %d containers of service %d from machine %d: only %d "
        "present",
        count, service, machine, present));
  }
  it->second -= count;
  if (it->second == 0) by_machine_[machine].erase(it);
  auto sit = by_service_[service].find(machine);
  sit->second -= count;
  if (sit->second == 0) by_service_[service].erase(sit);
  total_of_service_[service] -= count;
  containers_on_machine_[machine] -= count;
  const std::vector<double>& req = cluster_->service(service).request;
  for (int r = 0; r < cluster_->num_resources(); ++r) {
    used_[machine][r] -= req[r] * count;
  }
  return Status::OK();
}

bool Placement::CanPlace(int machine, int service, int count) const {
  if (!cluster_->CanHost(machine, service)) return false;
  const std::vector<double>& req = cluster_->service(service).request;
  for (int r = 0; r < cluster_->num_resources(); ++r) {
    if (used_[machine][r] + req[r] * count >
        cluster_->machine(machine).capacity[r] + kCapacityTolerance) {
      return false;
    }
  }
  for (int k : cluster_->RulesOfService(service)) {
    const AntiAffinityRule& rule = cluster_->anti_affinity()[k];
    if (RuleCount(machine, k) + count > rule.max_per_machine) return false;
  }
  return true;
}

int Placement::RuleCount(int machine, int rule) const {
  const AntiAffinityRule& r = cluster_->anti_affinity()[rule];
  int count = 0;
  for (int s : r.services) count += CountOn(machine, s);
  return count;
}

Status Placement::CheckFeasible(bool check_sla) const {
  for (int m = 0; m < cluster_->num_machines(); ++m) {
    for (int r = 0; r < cluster_->num_resources(); ++r) {
      if (used_[m][r] > cluster_->machine(m).capacity[r] + kCapacityTolerance) {
        return FailedPreconditionError(StrFormat(
            "machine %d over capacity on resource %d: %g > %g", m, r,
            used_[m][r], cluster_->machine(m).capacity[r]));
      }
    }
    for (const auto& [s, count] : by_machine_[m]) {
      if (count > 0 && !cluster_->CanHost(m, s)) {
        return FailedPreconditionError(
            StrFormat("machine %d cannot host service %d", m, s));
      }
    }
    for (size_t k = 0; k < cluster_->anti_affinity().size(); ++k) {
      const AntiAffinityRule& rule = cluster_->anti_affinity()[k];
      if (RuleCount(m, static_cast<int>(k)) > rule.max_per_machine) {
        return FailedPreconditionError(StrFormat(
            "machine %d violates anti-affinity rule %zu (%d > %d)", m, k,
            RuleCount(m, static_cast<int>(k)), rule.max_per_machine));
      }
    }
  }
  if (check_sla) {
    for (int s = 0; s < cluster_->num_services(); ++s) {
      if (total_of_service_[s] != cluster_->service(s).demand) {
        return FailedPreconditionError(StrFormat(
            "service %d deploys %d containers, SLA demands %d", s,
            total_of_service_[s], cluster_->service(s).demand));
      }
    }
  }
  return Status::OK();
}

int Placement::DiffCount(const Placement& other) const {
  int moved = 0;
  for (int s = 0; s < cluster_->num_services(); ++s) {
    // Sum of positive (this - other) differences per machine.
    const auto& mine = by_service_[s];
    const auto& theirs = other.by_service_[s];
    for (const auto& [m, count] : mine) {
      auto it = theirs.find(m);
      const int other_count = it == theirs.end() ? 0 : it->second;
      if (count > other_count) moved += count - other_count;
    }
  }
  return moved;
}

}  // namespace rasa
