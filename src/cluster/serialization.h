#ifndef RASA_CLUSTER_SERIALIZATION_H_
#define RASA_CLUSTER_SERIALIZATION_H_

#include <string>

#include "cluster/generator.h"
#include "common/statusor.h"

namespace rasa {

/// Serializes a cluster snapshot (cluster + placement) into a line-oriented,
/// human-diffable text format — the persistent form of the Data Collector's
/// output (§III-A). Stable across versions via a header tag; v2 ends in a
/// CRC-32 footer so truncation or bit rot is detected on load.
std::string SerializeSnapshot(const ClusterSnapshot& snapshot);

/// Parses a snapshot produced by SerializeSnapshot. Validates the cluster
/// and the placement's structural integrity (counts within machine range,
/// no unknown services) but intentionally does NOT require feasibility —
/// collected production states may be transiently over-committed. v2 input
/// additionally has its checksum footer verified: any truncated or corrupt
/// byte stream yields a clear kInvalidArgument, never a crash.
StatusOr<ClusterSnapshot> DeserializeSnapshot(const std::string& text);

/// Crash-atomic save (tmp + fsync + rename via common/durable_io).
Status SaveSnapshotToFile(const ClusterSnapshot& snapshot,
                          const std::string& path);
StatusOr<ClusterSnapshot> LoadSnapshotFromFile(const std::string& path);

}  // namespace rasa

#endif  // RASA_CLUSTER_SERIALIZATION_H_
