#include "cluster/first_fit.h"

#include <algorithm>

#include "common/strings.h"

namespace rasa {

StatusOr<Placement> FirstFitPlace(const Cluster& cluster, Rng& rng,
                                  FirstFitScore score, bool shuffle) {
  Placement placement(cluster);
  std::vector<int> order(cluster.num_services());
  for (int s = 0; s < cluster.num_services(); ++s) order[s] = s;
  if (shuffle) rng.Shuffle(order);

  const int R = cluster.num_resources();
  for (int s : order) {
    const Service& svc = cluster.service(s);
    for (int c = 0; c < svc.demand; ++c) {
      int best = -1;
      double best_score = -1e300;
      for (int m = 0; m < cluster.num_machines(); ++m) {
        if (!placement.CanPlace(m, s)) continue;  // the "filter" step
        // The "score" step: free fraction of the most loaded resource.
        double min_free_frac = 1.0;
        for (int r = 0; r < R; ++r) {
          const double cap = cluster.machine(m).capacity[r];
          if (cap <= 0.0) continue;
          min_free_frac = std::min(min_free_frac,
                                   placement.FreeResource(m, r) / cap);
        }
        const double value = score == FirstFitScore::kLeastAllocated
                                 ? min_free_frac
                                 : -min_free_frac;
        if (value > best_score) {
          best_score = value;
          best = m;
        }
      }
      if (best < 0) {
        return ResourceExhaustedError(StrFormat(
            "no feasible machine for container %d of service %s", c,
            svc.name.c_str()));
      }
      placement.Add(best, s);
    }
  }
  return placement;
}

double AverageUtilization(const Placement& placement) {
  const Cluster& cluster = *placement.cluster();
  if (cluster.num_machines() == 0) return 0.0;
  double total = 0.0;
  for (int m = 0; m < cluster.num_machines(); ++m) {
    double max_used_frac = 0.0;
    for (int r = 0; r < cluster.num_resources(); ++r) {
      const double cap = cluster.machine(m).capacity[r];
      if (cap <= 0.0) continue;
      max_used_frac =
          std::max(max_used_frac, placement.UsedResource(m, r) / cap);
    }
    total += max_used_frac;
  }
  return total / cluster.num_machines();
}

}  // namespace rasa
