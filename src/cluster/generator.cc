#include "cluster/generator.h"

#include <algorithm>
#include <cmath>

#include "cluster/first_fit.h"
#include "common/strings.h"

namespace rasa {
namespace {

// Heavy-tailed container count with the requested mean: lognormal-shaped
// multiplier around the mean, clamped to [1, 40 * mean].
int SampleDemand(double mean, Rng& rng) {
  const double sigma = 0.8;
  const double z = rng.NextGaussian();
  const double raw = mean * std::exp(sigma * z - sigma * sigma / 2.0);
  const int demand = static_cast<int>(std::lround(raw));
  return std::clamp(demand, 1, std::max(2, static_cast<int>(40 * mean)));
}

}  // namespace

namespace {
StatusOr<ClusterSnapshot> GenerateClusterOnce(const ClusterSpec& spec);
}  // namespace

StatusOr<ClusterSnapshot> GenerateCluster(const ClusterSpec& spec) {
  // Tiny instances can be unschedulable for one unlucky draw (lumpy demands
  // vs. few machines); retry deterministically with derived seeds.
  Status last = InternalError("unreachable");
  for (int attempt = 0; attempt < 8; ++attempt) {
    ClusterSpec retry = spec;
    retry.seed = spec.seed + 0x9e3779b97f4a7c15ULL * attempt;
    // Later attempts also add capacity headroom.
    retry.capacity_headroom = spec.capacity_headroom * (1.0 + 0.1 * attempt);
    StatusOr<ClusterSnapshot> snapshot = GenerateClusterOnce(retry);
    if (snapshot.ok()) return snapshot;
    last = snapshot.status();
    if (last.code() == StatusCode::kInvalidArgument) return last;
  }
  return last;
}

namespace {

StatusOr<ClusterSnapshot> GenerateClusterOnce(const ClusterSpec& spec) {
  if (spec.num_services <= 0 || spec.num_machines <= 0) {
    return InvalidArgumentError("cluster spec needs positive sizes");
  }
  Rng rng(spec.seed);
  const std::vector<std::string> resources = {"cpu", "memory"};
  const int R = 2;

  // --- Services (platforms assigned after the affinity graph) --------------
  std::vector<Service> services(spec.num_services);
  static const double kCpuChoices[] = {0.5, 1.0, 2.0, 4.0};
  for (int s = 0; s < spec.num_services; ++s) {
    Service& svc = services[s];
    svc.name = StrFormat("svc-%04d", s);
    svc.demand = SampleDemand(spec.containers_per_service, rng);
    const double cpu = kCpuChoices[rng.NextUint64(4)];
    const double mem = cpu * rng.NextDouble(1.5, 4.0);  // GB per core-ish
    svc.request = {cpu, mem};
    svc.platform = 0;
  }
  if (spec.exact_total_containers > 0) {
    // Table II reproduction: nudge the heavy-tailed draws to the exact
    // container total with +/-1 sweeps in service order. No RNG draws, so
    // the rest of the generation stream is unchanged.
    if (spec.exact_total_containers < spec.num_services) {
      return InvalidArgumentError(
          "exact_total_containers below one container per service");
    }
    int total = 0;
    for (const Service& svc : services) total += svc.demand;
    int delta = spec.exact_total_containers - total;
    for (int s = 0; delta != 0; s = (s + 1) % spec.num_services) {
      if (delta > 0) {
        ++services[s].demand;
        --delta;
      } else if (services[s].demand > 1) {
        --services[s].demand;
        ++delta;
      }
    }
  }

  // --- Affinity graph --------------------------------------------------------
  // A subset of services participates; edges are attached with power-law
  // preference so T(s) follows Assumption 4.1.
  const int num_affinity =
      std::max(2, static_cast<int>(spec.num_services * spec.affinity_fraction));
  std::vector<int> affinity_services =
      rng.SampleWithoutReplacement(spec.num_services, num_affinity);
  const int num_edges =
      std::max(1, static_cast<int>(num_affinity * spec.edge_factor));
  Rng graph_rng = rng.Fork(17);
  // Fan-out cap: even the hottest production service talks to a bounded set
  // of peers, which is what lets small subproblems contain hub traffic.
  const int max_degree = std::min(14, num_affinity - 1);
  AffinityGraph local =
      GeneratePowerLawGraph(num_affinity, num_edges, spec.affinity_beta,
                            graph_rng, max_degree);
  AffinityGraph affinity(spec.num_services);
  for (const AffinityEdge& e : local.edges()) {
    // Mapping through the sampled id list embeds the subgraph.
    affinity.AddEdge(affinity_services[e.u], affinity_services[e.v], e.weight);
  }
  affinity.NormalizeWeights();

  // --- Platform assignment (compatibility) ---------------------------------
  // Whole affinity components share a platform: services that exchange
  // traffic can always share machines (otherwise the affinity would be
  // unrealizable — production clusters do not pin callers and callees to
  // incompatible stacks). Small components and isolated services fill the
  // minority platform up to its requested share.
  {
    int num_components = 0;
    const std::vector<int> component =
        affinity.ConnectedComponents(&num_components);
    std::vector<std::vector<int>> members(num_components);
    for (int s = 0; s < spec.num_services; ++s) {
      members[component[s]].push_back(s);
    }
    std::vector<int> order(num_components);
    for (int k = 0; k < num_components; ++k) order[k] = k;
    rng.Shuffle(order);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return members[a].size() < members[b].size();
    });
    const int minority_target = static_cast<int>(
        spec.minority_platform_fraction * spec.num_services);
    int assigned = 0;
    for (int k : order) {
      if (assigned >= minority_target) break;
      if (assigned + static_cast<int>(members[k].size()) >
          minority_target + 2) {
        continue;  // would overshoot; try a smaller component
      }
      for (int s : members[k]) services[s].platform = 1;
      assigned += static_cast<int>(members[k].size());
    }
  }
  std::vector<double> total_request_by_platform[2];
  total_request_by_platform[0].assign(R, 0.0);
  total_request_by_platform[1].assign(R, 0.0);
  for (const Service& svc : services) {
    for (int r = 0; r < R; ++r) {
      total_request_by_platform[svc.platform][r] += svc.request[r] * svc.demand;
    }
  }

  // --- Machines ------------------------------------------------------------
  // Machine counts per platform proportional to requested load; capacities
  // chosen so each platform has `capacity_headroom` slack. Three specs per
  // platform: small / medium / large around the average requirement.
  const double total_cpu = total_request_by_platform[0][0] +
                           total_request_by_platform[1][0];
  int platform_counts[2];
  for (int platform = 0; platform < 2; ++platform) {
    const double cpu_share =
        total_cpu > 0.0 ? total_request_by_platform[platform][0] / total_cpu
                        : (platform == 0 ? 1.0 : 0.0);
    platform_counts[platform] = std::max(
        total_request_by_platform[platform][0] > 0.0 ? 1 : 0,
        static_cast<int>(std::lround(spec.num_machines * cpu_share)));
  }
  if (spec.exact_num_machines > 0) {
    // Charge the per-platform rounding residual to the larger platform so
    // the machine total matches Table II exactly.
    const int residual =
        spec.exact_num_machines - platform_counts[0] - platform_counts[1];
    const int big = platform_counts[0] >= platform_counts[1] ? 0 : 1;
    platform_counts[big] = std::max(1, platform_counts[big] + residual);
  }
  std::vector<Machine> machines;
  machines.reserve(static_cast<size_t>(
      std::max(0, platform_counts[0]) + std::max(0, platform_counts[1])));
  int next_spec_id = 0;
  for (int platform = 0; platform < 2; ++platform) {
    const int count = platform_counts[platform];
    if (count == 0) continue;
    double per_machine[2];
    for (int r = 0; r < R; ++r) {
      per_machine[r] = total_request_by_platform[platform][r] *
                       spec.capacity_headroom / count;
    }
    struct SpecShape {
      double factor;
      double mix;
    };
    static const SpecShape kShapes[] = {{0.7, 0.4}, {1.0, 0.4}, {1.8, 0.2}};
    // Normalize so the blended capacity matches per_machine on average:
    // 0.7*0.4 + 1.0*0.4 + 1.8*0.2 = 1.04.
    const double blend = 1.04;
    int spec_ids[3];
    for (int i = 0; i < 3; ++i) spec_ids[i] = next_spec_id++;
    for (int m = 0; m < count; ++m) {
      const double u = rng.NextDouble();
      const int shape = u < kShapes[0].mix ? 0 : (u < kShapes[0].mix + kShapes[1].mix ? 1 : 2);
      Machine machine;
      machine.platform = platform;
      machine.spec_id = spec_ids[shape];
      machine.name = StrFormat("m-%04zu", machines.size());
      machine.capacity.assign(R, 0.0);
      for (int r = 0; r < R; ++r) {
        machine.capacity[r] =
            std::ceil(per_machine[r] * kShapes[shape].factor / blend);
      }
      machines.push_back(std::move(machine));
    }
  }

  // --- Anti-affinity ----------------------------------------------------------
  int machines_per_platform[2] = {0, 0};
  for (const Machine& m : machines) ++machines_per_platform[m.platform];
  std::vector<AntiAffinityRule> rules;
  rules.reserve(static_cast<size_t>(spec.num_services) +
                static_cast<size_t>(spec.num_services) / 50);
  for (int s = 0; s < spec.num_services; ++s) {
    if (services[s].demand < 2) continue;
    if (!rng.NextBool(spec.anti_affinity_probability)) continue;
    AntiAffinityRule rule;
    rule.services = {s};
    // Spread each service across ~3 machines, but keep the instance
    // schedulable even when its platform has few machines.
    const int d = services[s].demand;
    const int platform_machines =
        std::max(1, machines_per_platform[services[s].platform]);
    const int schedulable_floor =
        (d + std::max(1, platform_machines - 1) - 1) /
        std::max(1, platform_machines - 1);
    rule.max_per_machine = std::max({2, (d + 2) / 3, schedulable_floor});
    rules.push_back(std::move(rule));
  }
  // A few multi-service disaster-domain rules over affine pairs.
  const int num_group_rules = spec.num_services / 50;
  for (int k = 0; k < num_group_rules; ++k) {
    const std::vector<int> members =
        rng.SampleWithoutReplacement(spec.num_services, 3);
    int demand_sum = 0;
    for (int s : members) demand_sum += services[s].demand;
    AntiAffinityRule rule;
    rule.services = members;
    rule.max_per_machine = std::max(3, demand_sum / 2);
    rules.push_back(std::move(rule));
  }

  auto cluster = std::make_shared<Cluster>(
      resources, std::move(services), std::move(machines),
      std::move(affinity), std::move(rules));
  RASA_RETURN_IF_ERROR(cluster->Validate());

  Rng place_rng = rng.Fork(23);
  RASA_ASSIGN_OR_RETURN(
      Placement placement,
      FirstFitPlace(*cluster, place_rng, FirstFitScore::kLeastAllocated));

  ClusterSnapshot snapshot{spec.name, std::move(cluster), Placement()};
  snapshot.original_placement = std::move(placement);
  return snapshot;
}

}  // namespace

namespace {

ClusterSpec ScaledSpec(const char* name, int services, int containers,
                       int machines, double beta, double scale,
                       uint64_t seed) {
  ClusterSpec spec;
  spec.name = name;
  scale = std::max(1.0, scale);
  spec.num_services = std::max(8, static_cast<int>(services / scale));
  spec.num_machines = std::max(3, static_cast<int>(machines / scale));
  spec.containers_per_service =
      static_cast<double>(containers) / services;
  spec.affinity_beta = beta;
  spec.seed = seed;
  if (scale == 1.0) {
    // Full Table II size: pin the exact row totals (service count already
    // lands exactly; containers and machines are nudged by the generator).
    spec.exact_total_containers = containers;
    spec.exact_num_machines = machines;
  }
  return spec;
}

}  // namespace

// Table II: M1 5904/25640/977, M2 10180/152833/5284, M3 547/3485/96,
// M4 10682/113261/4365.
ClusterSpec M1Spec(double scale) {
  return ScaledSpec("M1", 5904, 25640, 977, 1.7, scale, 101);
}
ClusterSpec M2Spec(double scale) {
  return ScaledSpec("M2", 10180, 152833, 5284, 1.5, scale, 102);
}
ClusterSpec M3Spec(double scale) {
  // M3 is the paper's small cluster (the one where even NO-PARTITION
  // finishes); scale it mildly less than the big ones so it keeps enough
  // structure to be interesting while staying clearly the smallest.
  return ScaledSpec("M3", 547, 3485, 96, 1.55, std::max(1.0, scale / 2.0), 103);
}
ClusterSpec M4Spec(double scale) {
  return ScaledSpec("M4", 10682, 113261, 4365, 1.6, scale, 104);
}

std::vector<ClusterSpec> TableTwoSpecs(double scale) {
  return {M1Spec(scale), M2Spec(scale), M3Spec(scale), M4Spec(scale)};
}

ClusterScaleStats ComputeScaleStats(const ClusterSnapshot& snapshot) {
  ClusterScaleStats stats;
  stats.name = snapshot.name;
  stats.num_services = snapshot.cluster->num_services();
  stats.num_containers = snapshot.cluster->num_containers();
  stats.num_machines = snapshot.cluster->num_machines();
  return stats;
}

}  // namespace rasa
