#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace rasa {

Cluster::Cluster(std::vector<std::string> resource_names,
                 std::vector<Service> services, std::vector<Machine> machines,
                 AffinityGraph affinity,
                 std::vector<AntiAffinityRule> anti_affinity)
    : resource_names_(std::move(resource_names)),
      services_(std::move(services)),
      machines_(std::move(machines)),
      affinity_(std::move(affinity)),
      anti_affinity_(std::move(anti_affinity)) {
  rules_of_service_.assign(services_.size(), {});
  for (size_t k = 0; k < anti_affinity_.size(); ++k) {
    for (int s : anti_affinity_[k].services) {
      if (s >= 0 && s < num_services()) {
        rules_of_service_[s].push_back(static_cast<int>(k));
      }
    }
  }
  for (const Service& s : services_) total_containers_ += s.demand;
  // A Cluster is shared read-only across solver threads: build the affinity
  // graph's read-side index now so no concurrent reader ever races on the
  // lazy rebuild.
  affinity_.Finalize();
}

std::vector<int> Cluster::MachineSpecIds() const {
  std::vector<int> specs;
  for (const Machine& m : machines_) specs.push_back(m.spec_id);
  std::sort(specs.begin(), specs.end());
  specs.erase(std::unique(specs.begin(), specs.end()), specs.end());
  return specs;
}

std::vector<int> Cluster::MachinesWithSpec(int spec_id) const {
  std::vector<int> out;
  for (int m = 0; m < num_machines(); ++m) {
    if (machines_[m].spec_id == spec_id) out.push_back(m);
  }
  return out;
}

Status Cluster::Validate() const {
  const int R = num_resources();
  for (int s = 0; s < num_services(); ++s) {
    const Service& svc = services_[s];
    if (svc.demand < 0) {
      return InvalidArgumentError(
          StrFormat("service %s has negative demand", svc.name.c_str()));
    }
    if (static_cast<int>(svc.request.size()) != R) {
      return InvalidArgumentError(StrFormat(
          "service %s has %zu resource requests, expected %d",
          svc.name.c_str(), svc.request.size(), R));
    }
    for (double r : svc.request) {
      if (!std::isfinite(r) || r < 0.0) {
        return InvalidArgumentError(StrFormat(
            "service %s has negative or non-finite request",
            svc.name.c_str()));
      }
    }
  }
  for (int m = 0; m < num_machines(); ++m) {
    if (static_cast<int>(machines_[m].capacity.size()) != R) {
      return InvalidArgumentError(StrFormat(
          "machine %s has %zu capacities, expected %d",
          machines_[m].name.c_str(), machines_[m].capacity.size(), R));
    }
    for (double c : machines_[m].capacity) {
      if (!std::isfinite(c) || c < 0.0) {
        return InvalidArgumentError(StrFormat(
            "machine %s has negative or non-finite capacity",
            machines_[m].name.c_str()));
      }
    }
  }
  if (affinity_.num_vertices() != num_services()) {
    return InvalidArgumentError(StrFormat(
        "affinity graph has %d vertices, expected %d services",
        affinity_.num_vertices(), num_services()));
  }
  for (const AntiAffinityRule& rule : anti_affinity_) {
    if (rule.max_per_machine < 0) {
      return InvalidArgumentError("anti-affinity rule with negative limit");
    }
    for (int s : rule.services) {
      if (s < 0 || s >= num_services()) {
        return InvalidArgumentError(
            StrFormat("anti-affinity rule references unknown service %d", s));
      }
    }
  }
  return Status::OK();
}

}  // namespace rasa
