#ifndef RASA_CLUSTER_PLACEMENT_H_
#define RASA_CLUSTER_PLACEMENT_H_

#include <map>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"

namespace rasa {

/// Absolute slack allowed on machine resource capacities, shared by the
/// admission check (CanPlace) and the audit (CheckFeasible). A single
/// constant keeps the two consistent: anything CanPlace admits must pass
/// the audit, and the audit must reject anything CanPlace would refuse —
/// a looser audit tolerance would mask real over-commitment, a tighter one
/// would flag placements the admission path built legitimately.
inline constexpr double kCapacityTolerance = 1e-9;

/// The decision matrix x_{s,m}: how many containers of each service sit on
/// each machine. Kept sparse (most services touch few machines) with
/// deterministic iteration order, plus incremental resource accounting.
class Placement {
 public:
  Placement() = default;
  explicit Placement(const Cluster& cluster);

  /// x_{s,m}.
  int CountOn(int machine, int service) const;
  /// Total deployed containers of `service` across machines.
  int TotalOf(int service) const { return total_of_service_[service]; }
  /// Total containers on `machine`.
  int ContainersOn(int machine) const { return containers_on_machine_[machine]; }

  /// Services present on `machine` with positive count, ordered by id.
  const std::map<int, int>& ServicesOn(int machine) const {
    return by_machine_[machine];
  }
  /// Machines hosting `service` with positive count, ordered by id.
  const std::map<int, int>& MachinesOf(int service) const {
    return by_service_[service];
  }

  /// Used amount of resource `r` on `machine`.
  double UsedResource(int machine, int r) const { return used_[machine][r]; }
  /// Remaining capacity of resource `r` on `machine`.
  double FreeResource(int machine, int r) const;

  /// Adds `count` containers of `service` to `machine` without checking
  /// constraints (callers needing checks use CanPlace first).
  void Add(int machine, int service, int count = 1);
  /// Removes `count` containers; returns an error if fewer are present.
  Status Remove(int machine, int service, int count = 1);

  /// True if adding `count` containers of `service` keeps resources,
  /// anti-affinity and schedulability satisfied on `machine`.
  bool CanPlace(int machine, int service, int count = 1) const;

  /// Count of containers on `machine` covered by anti-affinity rule `k`.
  int RuleCount(int machine, int rule) const;

  /// Full feasibility audit (resources, anti-affinity, schedulability).
  /// With `check_sla`, also verifies TotalOf(s) == demand for all services.
  Status CheckFeasible(bool check_sla = true) const;

  /// Number of containers whose (service, machine) assignment differs from
  /// `other` — the migration volume between two placements (counts moved
  /// containers once, i.e. sum of positive differences).
  int DiffCount(const Placement& other) const;

  const Cluster* cluster() const { return cluster_; }

 private:
  const Cluster* cluster_ = nullptr;
  std::vector<std::map<int, int>> by_machine_;
  std::vector<std::map<int, int>> by_service_;
  std::vector<std::vector<double>> used_;
  std::vector<int> total_of_service_;
  std::vector<int> containers_on_machine_;
};

}  // namespace rasa

#endif  // RASA_CLUSTER_PLACEMENT_H_
