#ifndef RASA_CLUSTER_CLUSTER_H_
#define RASA_CLUSTER_CLUSTER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/affinity_graph.h"

namespace rasa {

/// A microservice: d_s homogeneous containers, each requesting the same
/// per-resource amounts (Table I: d_s, R^S).
struct Service {
  std::string name;
  /// d_s: number of containers the SLA requires.
  int demand = 0;
  /// R^S_{r,s}: requested amount of each resource type per container.
  std::vector<double> request;
  /// Compatibility platform (schedulable constraints, §II-C): a container
  /// may only run on machines with the same platform id.
  int platform = 0;
};

/// A physical machine (Table I: R^M).
struct Machine {
  std::string name;
  /// Machines with the same spec id have identical capacity & platform;
  /// solver layers aggregate them into machine groups.
  int spec_id = 0;
  /// R^M_{r,m}: total capacity per resource type.
  std::vector<double> capacity;
  int platform = 0;
};

/// Anti-affinity rule (Table I: A_k, h_k): a single machine may host at most
/// `max_per_machine` containers drawn from `services` combined.
struct AntiAffinityRule {
  std::vector<int> services;
  int max_per_machine = 0;
};

/// Immutable description of a cluster: the inputs of the RASA problem
/// (services, machines, affinity graph, anti-affinity, schedulability).
class Cluster {
 public:
  Cluster() = default;
  Cluster(std::vector<std::string> resource_names,
          std::vector<Service> services, std::vector<Machine> machines,
          AffinityGraph affinity,
          std::vector<AntiAffinityRule> anti_affinity);

  int num_services() const { return static_cast<int>(services_.size()); }
  int num_machines() const { return static_cast<int>(machines_.size()); }
  int num_resources() const { return static_cast<int>(resource_names_.size()); }
  int num_containers() const { return total_containers_; }

  const std::vector<std::string>& resource_names() const {
    return resource_names_;
  }
  const Service& service(int s) const { return services_[s]; }
  const Machine& machine(int m) const { return machines_[m]; }
  const std::vector<Service>& services() const { return services_; }
  const std::vector<Machine>& machines() const { return machines_; }

  /// The service-to-service affinity graph (vertex ids == service ids).
  const AffinityGraph& affinity() const { return affinity_; }

  const std::vector<AntiAffinityRule>& anti_affinity() const {
    return anti_affinity_;
  }
  /// Indices of anti-affinity rules mentioning service `s`.
  const std::vector<int>& RulesOfService(int s) const {
    return rules_of_service_[s];
  }

  /// b_{s,m}: whether machine `m` may host containers of service `s`.
  bool CanHost(int machine, int service) const {
    return machines_[machine].platform == services_[service].platform;
  }

  /// Distinct machine spec ids in use.
  std::vector<int> MachineSpecIds() const;
  /// Machine ids with the given spec.
  std::vector<int> MachinesWithSpec(int spec_id) const;

  /// Structural validation: positive demands, matching resource dimensions,
  /// sane anti-affinity rules, affinity graph sized to services.
  Status Validate() const;

 private:
  std::vector<std::string> resource_names_;
  std::vector<Service> services_;
  std::vector<Machine> machines_;
  AffinityGraph affinity_;
  std::vector<AntiAffinityRule> anti_affinity_;
  std::vector<std::vector<int>> rules_of_service_;
  int total_containers_ = 0;
};

}  // namespace rasa

#endif  // RASA_CLUSTER_CLUSTER_H_
