#include "cluster/serialization.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>

#include "common/durable_io.h"
#include "common/strings.h"

namespace rasa {
namespace {

// v2 appends a mandatory CRC-32 footer ("checksum <hex8>" after "end") so a
// truncated or bit-rotted file is rejected instead of silently parsing; v1
// files (no footer) are still accepted for backward compatibility.
constexpr char kMagic[] = "rasa-snapshot-v2";
constexpr char kMagicV1[] = "rasa-snapshot-v1";

// Hard caps on header-declared counts. A corrupt or hostile header must not
// be able to drive a multi-gigabyte allocation (or an int overflow) before
// the truncated body is even read; containers are also built incrementally
// below so a lying count fails on the first missing record, not on reserve.
constexpr int kMaxEntities = 10'000'000;       // services, machines, rules
constexpr int kMaxEdges = 100'000'000;         // affinity edges
constexpr int kMaxPlacementEntries = 20'000'000;
constexpr int kMaxDemand = 10'000'000;         // containers per service
constexpr int64_t kMaxTotalContainers = 1'000'000'000;

// Resource amounts must be finite and non-negative (NaN slips past plain
// `< 0` comparisons and poisons every downstream computation).
bool SaneAmount(double x) { return std::isfinite(x) && x >= 0.0; }

}  // namespace

std::string SerializeSnapshot(const ClusterSnapshot& snapshot) {
  const Cluster& cluster = *snapshot.cluster;
  std::ostringstream os;
  os.precision(17);
  os << kMagic << "\n";
  os << "name " << snapshot.name << "\n";

  os << "resources " << cluster.num_resources();
  for (const std::string& r : cluster.resource_names()) os << " " << r;
  os << "\n";

  os << "services " << cluster.num_services() << "\n";
  for (const Service& s : cluster.services()) {
    os << s.name << " " << s.demand << " " << s.platform;
    for (double r : s.request) os << " " << r;
    os << "\n";
  }

  os << "machines " << cluster.num_machines() << "\n";
  for (const Machine& m : cluster.machines()) {
    os << m.name << " " << m.spec_id << " " << m.platform;
    for (double c : m.capacity) os << " " << c;
    os << "\n";
  }

  os << "affinity " << cluster.affinity().num_edges() << "\n";
  for (const AffinityEdge& e : cluster.affinity().edges()) {
    os << e.u << " " << e.v << " " << e.weight << "\n";
  }

  os << "anti_affinity " << cluster.anti_affinity().size() << "\n";
  for (const AntiAffinityRule& rule : cluster.anti_affinity()) {
    os << rule.max_per_machine << " " << rule.services.size();
    for (int s : rule.services) os << " " << s;
    os << "\n";
  }

  // Placement entries: (machine, service, count).
  int entries = 0;
  for (int m = 0; m < cluster.num_machines(); ++m) {
    entries += static_cast<int>(snapshot.original_placement.ServicesOn(m).size());
  }
  os << "placement " << entries << "\n";
  for (int m = 0; m < cluster.num_machines(); ++m) {
    for (const auto& [s, count] : snapshot.original_placement.ServicesOn(m)) {
      os << m << " " << s << " " << count << "\n";
    }
  }
  os << "end\n";
  // CRC-32 of everything above, emitted as exactly 8 hex digits. Any strict
  // byte prefix of the serialized form fails to verify.
  std::string body = os.str();
  body += StrFormat("checksum %08x\n", Crc32(body));
  return body;
}

StatusOr<ClusterSnapshot> DeserializeSnapshot(const std::string& text) {
  std::istringstream is(text);
  std::string token;
  if (!(is >> token) || (token != kMagic && token != kMagicV1)) {
    return InvalidArgumentError("bad snapshot header");
  }
  const bool checksummed = token == kMagic;
  auto expect = [&](const char* keyword) -> Status {
    if (!(is >> token) || token != keyword) {
      return InvalidArgumentError(
          StrFormat("expected '%s' in snapshot", keyword));
    }
    return Status::OK();
  };

  ClusterSnapshot snapshot;
  RASA_RETURN_IF_ERROR(expect("name"));
  if (!(is >> snapshot.name)) return InvalidArgumentError("missing name");

  RASA_RETURN_IF_ERROR(expect("resources"));
  int num_resources = 0;
  if (!(is >> num_resources) || num_resources < 0 || num_resources > 64) {
    return InvalidArgumentError("bad resource count");
  }
  std::vector<std::string> resource_names(num_resources);
  for (std::string& r : resource_names) {
    if (!(is >> r)) return InvalidArgumentError("missing resource name");
  }

  RASA_RETURN_IF_ERROR(expect("services"));
  int num_services = 0;
  if (!(is >> num_services) || num_services < 0 ||
      num_services > kMaxEntities) {
    return InvalidArgumentError("bad service count");
  }
  std::vector<Service> services;
  services.reserve(std::min(num_services, 65536));
  int64_t total_containers = 0;
  for (int i = 0; i < num_services; ++i) {
    Service s;
    if (!(is >> s.name >> s.demand >> s.platform)) {
      return InvalidArgumentError("truncated service record");
    }
    if (s.demand < 0 || s.demand > kMaxDemand) {
      return InvalidArgumentError(
          StrFormat("implausible demand %d for service %s", s.demand,
                    s.name.c_str()));
    }
    total_containers += s.demand;
    if (total_containers > kMaxTotalContainers) {
      return InvalidArgumentError("total demand overflows container count");
    }
    s.request.resize(num_resources);
    for (double& r : s.request) {
      if (!(is >> r) || !SaneAmount(r)) {
        return InvalidArgumentError("bad service request value");
      }
    }
    services.push_back(std::move(s));
  }

  RASA_RETURN_IF_ERROR(expect("machines"));
  int num_machines = 0;
  if (!(is >> num_machines) || num_machines < 0 ||
      num_machines > kMaxEntities) {
    return InvalidArgumentError("bad machine count");
  }
  std::vector<Machine> machines;
  machines.reserve(std::min(num_machines, 65536));
  for (int i = 0; i < num_machines; ++i) {
    Machine m;
    if (!(is >> m.name >> m.spec_id >> m.platform)) {
      return InvalidArgumentError("truncated machine record");
    }
    m.capacity.resize(num_resources);
    for (double& c : m.capacity) {
      if (!(is >> c) || !SaneAmount(c)) {
        return InvalidArgumentError("bad capacity value");
      }
    }
    machines.push_back(std::move(m));
  }

  RASA_RETURN_IF_ERROR(expect("affinity"));
  int num_edges = 0;
  if (!(is >> num_edges) || num_edges < 0 || num_edges > kMaxEdges) {
    return InvalidArgumentError("bad edge count");
  }
  AffinityGraph affinity(num_services);
  for (int e = 0; e < num_edges; ++e) {
    int u = 0, v = 0;
    double w = 0.0;
    if (!(is >> u >> v >> w)) return InvalidArgumentError("truncated edge");
    // AddEdge bounds-checks the endpoints and rejects non-positive (and
    // NaN) weights; infinities are rejected here.
    if (!std::isfinite(w)) return InvalidArgumentError("non-finite weight");
    RASA_RETURN_IF_ERROR(affinity.AddEdge(u, v, w));
  }

  RASA_RETURN_IF_ERROR(expect("anti_affinity"));
  int num_rules = 0;
  if (!(is >> num_rules) || num_rules < 0 || num_rules > kMaxEntities) {
    return InvalidArgumentError("bad rule count");
  }
  std::vector<AntiAffinityRule> rules;
  rules.reserve(std::min(num_rules, 65536));
  for (int i = 0; i < num_rules; ++i) {
    AntiAffinityRule rule;
    size_t members = 0;
    if (!(is >> rule.max_per_machine >> members) || members > 1u << 20) {
      return InvalidArgumentError("truncated rule");
    }
    rule.services.resize(members);
    for (int& s : rule.services) {
      if (!(is >> s)) return InvalidArgumentError("truncated rule members");
    }
    rules.push_back(std::move(rule));
  }

  snapshot.cluster = std::make_shared<Cluster>(
      std::move(resource_names), std::move(services), std::move(machines),
      std::move(affinity), std::move(rules));
  RASA_RETURN_IF_ERROR(snapshot.cluster->Validate());

  RASA_RETURN_IF_ERROR(expect("placement"));
  int entries = 0;
  if (!(is >> entries) || entries < 0 || entries > kMaxPlacementEntries) {
    return InvalidArgumentError("bad placement count");
  }
  snapshot.original_placement = Placement(*snapshot.cluster);
  int64_t placed = 0;
  for (int i = 0; i < entries; ++i) {
    int m = 0, s = 0, count = 0;
    if (!(is >> m >> s >> count)) {
      return InvalidArgumentError("truncated placement entry");
    }
    if (m < 0 || m >= num_machines || s < 0 || s >= num_services ||
        count <= 0 || count > kMaxDemand) {
      return InvalidArgumentError(
          StrFormat("bad placement entry (%d, %d, %d)", m, s, count));
    }
    placed += count;
    if (placed > kMaxTotalContainers) {
      return InvalidArgumentError("placement overflows container count");
    }
    snapshot.original_placement.Add(m, s, count);
  }
  RASA_RETURN_IF_ERROR(expect("end"));
  if (checksummed) {
    // The footer covers every byte through the "end" line, so the CRC must
    // be computed over the raw text, not the parsed token stream.
    const std::streamoff body_end = is.tellg();
    if (body_end < 0 || static_cast<size_t>(body_end) >= text.size() ||
        text[static_cast<size_t>(body_end)] != '\n') {
      return InvalidArgumentError("truncated snapshot footer");
    }
    std::string crc_token;
    if (!(is >> token) || token != "checksum" || !(is >> crc_token)) {
      return InvalidArgumentError("missing snapshot checksum footer");
    }
    if (crc_token.size() != 8 ||
        crc_token.find_first_not_of("0123456789abcdef") != std::string::npos) {
      return InvalidArgumentError("torn snapshot checksum");
    }
    // The footer line itself must be complete — newline-terminated with
    // nothing after it. Otherwise a write cut one byte short of the end
    // would still parse.
    const size_t footer_end = static_cast<size_t>(body_end) + 1 +
                              std::string("checksum ").size() +
                              crc_token.size() + 1;
    if (text.size() != footer_end || text.back() != '\n') {
      return InvalidArgumentError("torn snapshot checksum footer");
    }
    const uint32_t declared =
        static_cast<uint32_t>(std::strtoul(crc_token.c_str(), nullptr, 16));
    const uint32_t actual =
        Crc32(text.data(), static_cast<size_t>(body_end) + 1);
    if (actual != declared) {
      return InvalidArgumentError(
          StrFormat("snapshot checksum mismatch (stored %08x, computed %08x)",
                    declared, actual));
    }
  }
  return snapshot;
}

Status SaveSnapshotToFile(const ClusterSnapshot& snapshot,
                          const std::string& path) {
  // tmp + fsync + rename: a crash mid-save never leaves a half-written
  // snapshot observable at `path`.
  return AtomicWriteFile(path, SerializeSnapshot(snapshot));
}

StatusOr<ClusterSnapshot> LoadSnapshotFromFile(const std::string& path) {
  StatusOr<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return DeserializeSnapshot(*text);
}

}  // namespace rasa
