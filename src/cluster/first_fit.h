#ifndef RASA_CLUSTER_FIRST_FIT_H_
#define RASA_CLUSTER_FIRST_FIT_H_

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"

namespace rasa {

/// How the scoring half of filter-and-score ranks feasible machines.
enum class FirstFitScore {
  /// Most remaining normalized resources first (spreads load; this is the
  /// ORIGINAL production scheduler of §V-A).
  kLeastAllocated,
  /// Least remaining resources first (packs machines tightly).
  kMostAllocated,
};

/// Kubernetes-style filter-and-score placement: services are processed in
/// the given order (shuffled when `shuffle` is set), each container is
/// placed on the feasible machine with the best score. Fails only if some
/// container fits on no machine.
StatusOr<Placement> FirstFitPlace(const Cluster& cluster, Rng& rng,
                                  FirstFitScore score =
                                      FirstFitScore::kLeastAllocated,
                                  bool shuffle = true);

/// Fraction of each machine's dominant resource in use, averaged across
/// machines — a quick load-balance indicator used in tests and the
/// trade-off discussion of §III-B.
double AverageUtilization(const Placement& placement);

}  // namespace rasa

#endif  // RASA_CLUSTER_FIRST_FIT_H_
