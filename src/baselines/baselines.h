#ifndef RASA_BASELINES_BASELINES_H_
#define RASA_BASELINES_BASELINES_H_

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "common/statusor.h"
#include "common/timer.h"

namespace rasa {

/// Result of one baseline scheduler run (§V-A).
struct BaselineResult {
  Placement placement;
  double gained_affinity = 0.0;
  double seconds = 0.0;
  /// The algorithm could not finish inside the deadline. K8S+ and
  /// APPLSCI19 yield no feasible intermediate solutions, so an OOT run
  /// returns this flag with the best-effort completion.
  bool out_of_time = false;
  /// Containers no machine could take (handed to nothing; should be 0).
  int lost_containers = 0;
};

/// ORIGINAL: the production scheduler RASA replaced — first-fit with the
/// Kubernetes filter-and-score process, affinity-blind.
StatusOr<BaselineResult> RunOriginal(const Cluster& cluster, uint64_t seed);

/// K8S+: the online Kubernetes-style algorithm of [14] — filter feasible
/// machines per container, score with a service-affinity-aware function,
/// place greedily in arrival order.
StatusOr<BaselineResult> RunK8sPlus(const Cluster& cluster,
                                    const Deadline& deadline, uint64_t seed);

/// POP [23]: uniformly random service/machine partition into `partitions`
/// subclusters (0 = auto), each solved with the solver-based MIP under an
/// equal share of the deadline, then recombined.
StatusOr<BaselineResult> RunPop(const Cluster& cluster,
                                const Placement& current,
                                const Deadline& deadline, uint64_t seed,
                                int partitions = 0);

/// APPLSCI19 [46] (extended): min-weight balanced graph partitioning of the
/// affinity graph, then heuristic bin packing that assumes a single uniform
/// machine size (the smallest spec); bins are then mapped onto the real
/// heterogeneous machines, which frequently fails on multi-spec clusters —
/// failed containers fall back to first-fit.
StatusOr<BaselineResult> RunApplsci19(const Cluster& cluster,
                                      const Placement& current,
                                      const Deadline& deadline, uint64_t seed);

}  // namespace rasa

#endif  // RASA_BASELINES_BASELINES_H_
