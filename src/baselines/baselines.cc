#include "baselines/baselines.h"

#include <algorithm>
#include <numeric>

#include "cluster/first_fit.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/algorithm_pool.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "core/subproblem.h"
#include "graph/partition.h"

namespace rasa {
namespace {

// Marginal gained affinity of adding one container of `service` to
// `machine`, over the whole affinity graph.
double GlobalMarginalGain(const Cluster& cluster, const Placement& placement,
                          int service, int machine) {
  const int d_s = cluster.service(service).demand;
  if (d_s <= 0) return 0.0;
  const int x_s = placement.CountOn(machine, service);
  double gain = 0.0;
  for (const auto& [nbr, w] : cluster.affinity().Neighbors(service)) {
    const int d_n = cluster.service(nbr).demand;
    if (d_n <= 0) continue;
    const int x_n = placement.CountOn(machine, nbr);
    if (x_n == 0) continue;
    const double before = std::min(static_cast<double>(x_s) / d_s,
                                   static_cast<double>(x_n) / d_n);
    const double after = std::min(static_cast<double>(x_s + 1) / d_s,
                                  static_cast<double>(x_n) / d_n);
    gain += w * (after - before);
  }
  return gain;
}

int FallbackPlaceOne(const Cluster& cluster, Placement& placement,
                     int service) {
  int best = -1;
  double best_free = -1e300;
  for (int m = 0; m < cluster.num_machines(); ++m) {
    if (!placement.CanPlace(m, service)) continue;
    double min_free = 1.0;
    for (int r = 0; r < cluster.num_resources(); ++r) {
      const double cap = cluster.machine(m).capacity[r];
      if (cap > 0.0) {
        min_free = std::min(min_free, placement.FreeResource(m, r) / cap);
      }
    }
    if (min_free > best_free) {
      best_free = min_free;
      best = m;
    }
  }
  if (best >= 0) placement.Add(best, service);
  return best;
}

}  // namespace

StatusOr<BaselineResult> RunOriginal(const Cluster& cluster, uint64_t seed) {
  Stopwatch timer;
  Rng rng(seed);
  RASA_ASSIGN_OR_RETURN(
      Placement placement,
      FirstFitPlace(cluster, rng, FirstFitScore::kLeastAllocated));
  BaselineResult result;
  result.gained_affinity = GainedAffinity(cluster, placement);
  result.placement = std::move(placement);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

StatusOr<BaselineResult> RunK8sPlus(const Cluster& cluster,
                                    const Deadline& deadline, uint64_t seed) {
  Stopwatch timer;
  Rng rng(seed);
  BaselineResult result;
  Placement placement(cluster);

  // Containers arrive in shuffled service order (the online setting); each
  // is placed on the feasible machine with the best affinity-aware score.
  std::vector<int> order(cluster.num_services());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  for (int s : order) {
    const Service& svc = cluster.service(s);
    for (int c = 0; c < svc.demand; ++c) {
      if (deadline.Expired()) result.out_of_time = true;
      int best = -1;
      double best_score = -1e300;
      for (int m = 0; m < cluster.num_machines(); ++m) {
        if (!placement.CanPlace(m, s)) continue;  // filter
        // Score: affinity gain dominates, least-allocated breaks ties.
        double min_free = 1.0;
        for (int r = 0; r < cluster.num_resources(); ++r) {
          const double cap = cluster.machine(m).capacity[r];
          if (cap > 0.0) {
            min_free = std::min(min_free, placement.FreeResource(m, r) / cap);
          }
        }
        const double score =
            GlobalMarginalGain(cluster, placement, s, m) + 1e-4 * min_free;
        if (score > best_score) {
          best_score = score;
          best = m;
        }
      }
      if (best < 0) {
        ++result.lost_containers;
        continue;
      }
      placement.Add(best, s);
    }
  }
  result.gained_affinity = GainedAffinity(cluster, placement);
  result.placement = std::move(placement);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

StatusOr<BaselineResult> RunPop(const Cluster& cluster,
                                const Placement& current,
                                const Deadline& deadline, uint64_t seed,
                                int partitions) {
  Stopwatch timer;
  Rng rng(seed);
  BaselineResult result;

  const int N = cluster.num_services();
  // POP splits into a handful of subclusters (the paper's experiments use
  // single-digit splits); too many partitions would destroy the affinity
  // structure entirely.
  if (partitions <= 0) partitions = std::clamp(N / 300, 2, 4);

  // Uniformly random service split (the "granular" assumption of POP).
  Partition service_partition =
      RandomPartition(cluster.affinity(), partitions, rng);
  std::vector<Subproblem> subproblems(partitions);
  for (int s = 0; s < N; ++s) {
    subproblems[service_partition.part_of[s]].services.push_back(s);
  }
  // Machines dealt round-robin after shuffling: a random equal split.
  std::vector<int> machines(cluster.num_machines());
  std::iota(machines.begin(), machines.end(), 0);
  rng.Shuffle(machines);
  for (size_t i = 0; i < machines.size(); ++i) {
    subproblems[i % partitions].machines.push_back(machines[i]);
  }

  Placement working(cluster);  // POP reschedules everything
  std::vector<int> unplaced(N, 0);
  for (Subproblem& sp : subproblems) {
    PopulateSubproblemEdges(cluster, sp);
    const double share = deadline.RemainingSeconds() /
                         std::max(1, partitions);
    StatusOr<SubproblemSolution> solution = RunPoolAlgorithm(
        PoolAlgorithm::kMip, cluster, sp, working, current,
        deadline.ClampedToSeconds(std::max(0.02, share)), rng.Next());
    std::vector<int> placed(N, 0);
    if (!solution.ok()) {
      // Solver ran out of time/memory on this subcluster: greedy fallback,
      // like any practical solver-in-the-loop deployment.
      result.out_of_time = true;
      SubproblemSolution greedy = GreedyAffinityPlace(cluster, sp, working);
      for (const SubproblemSolution::Assignment& a : greedy.assignments) {
        placed[a.service] += a.count;  // greedy already added to `working`
      }
    } else {
      for (const SubproblemSolution::Assignment& a : solution->assignments) {
        int fit = 0;
        while (fit < a.count && working.CanPlace(a.machine, a.service)) {
          working.Add(a.machine, a.service);
          ++fit;
        }
        placed[a.service] += fit;
      }
    }
    for (int s : sp.services) {
      unplaced[s] += cluster.service(s).demand - placed[s];
    }
    if (deadline.Expired()) result.out_of_time = true;
  }
  for (int s = 0; s < N; ++s) {
    for (int c = 0; c < unplaced[s]; ++c) {
      if (FallbackPlaceOne(cluster, working, s) < 0) ++result.lost_containers;
    }
  }
  result.gained_affinity = GainedAffinity(cluster, working);
  result.placement = std::move(working);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

StatusOr<BaselineResult> RunApplsci19(const Cluster& cluster,
                                      const Placement& current,
                                      const Deadline& deadline,
                                      uint64_t seed) {
  (void)current;
  Stopwatch timer;
  Rng rng(seed);
  BaselineResult result;
  const int N = cluster.num_services();
  const int R = cluster.num_resources();

  // The uniform machine size the original algorithm assumes: the smallest
  // spec's capacity (conservative packing).
  std::vector<double> bin_capacity(R, 1e300);
  for (const Machine& m : cluster.machines()) {
    for (int r = 0; r < R; ++r) {
      bin_capacity[r] = std::min(bin_capacity[r], m.capacity[r]);
    }
  }

  // Min-weight balanced partition of affinity services; non-affinity
  // services skip packing and go straight to the first-fit fallback below.
  std::vector<int> affine;
  for (int s = 0; s < N; ++s) {
    if (cluster.affinity().Degree(s) > 0) affine.push_back(s);
  }
  std::vector<std::vector<int>> groups;
  if (!affine.empty()) {
    const AffinityGraph sub = cluster.affinity().InducedSubgraph(affine);
    const int k =
        std::max(1, static_cast<int>(affine.size()) / 20);
    Partition partition = KahipLikePartition(sub, k, rng);
    groups.resize(partition.num_parts);
    for (size_t v = 0; v < affine.size(); ++v) {
      groups[partition.part_of[v]].push_back(affine[v]);
    }
  }

  // Heuristic packing into uniform bins: per group, containers of heavy
  // services first, each into the open bin with the best affinity gain.
  struct Bin {
    std::vector<int> counts;       // per global service id (sparse map)
    std::vector<double> used;
  };
  std::vector<Bin> bins;
  auto bin_gain = [&](const Bin& bin, int s) {
    const int d_s = cluster.service(s).demand;
    if (d_s <= 0) return 0.0;
    double gain = 0.0;
    const int x_s = bin.counts[s];
    for (const auto& [nbr, w] : cluster.affinity().Neighbors(s)) {
      const int x_n = bin.counts[nbr];
      if (x_n == 0) continue;
      const int d_n = cluster.service(nbr).demand;
      if (d_n <= 0) continue;
      gain += w * (std::min(static_cast<double>(x_s + 1) / d_s,
                            static_cast<double>(x_n) / d_n) -
                   std::min(static_cast<double>(x_s) / d_s,
                            static_cast<double>(x_n) / d_n));
    }
    return gain;
  };

  for (const std::vector<int>& group : groups) {
    if (deadline.Expired()) result.out_of_time = true;
    std::vector<int> order = group;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return cluster.affinity().TotalAffinityOf(a) >
             cluster.affinity().TotalAffinityOf(b);
    });
    const size_t group_bins_begin = bins.size();
    for (int s : order) {
      const Service& svc = cluster.service(s);
      for (int c = 0; c < svc.demand; ++c) {
        int best = -1;
        double best_score = -1e300;
        for (size_t b = group_bins_begin; b < bins.size(); ++b) {
          bool fits = true;
          for (int r = 0; r < R; ++r) {
            if (bins[b].used[r] + svc.request[r] > bin_capacity[r] + 1e-9) {
              fits = false;
              break;
            }
          }
          if (!fits) continue;
          const double score = bin_gain(bins[b], s);
          if (score > best_score) {
            best_score = score;
            best = static_cast<int>(b);
          }
        }
        if (best < 0 || best_score <= 0.0) {
          // Open a new bin when nothing gains (or nothing fits).
          bool new_bin_fits = true;
          for (int r = 0; r < R; ++r) {
            if (svc.request[r] > bin_capacity[r] + 1e-9) new_bin_fits = false;
          }
          if (best < 0 && !new_bin_fits) continue;  // truly unplaceable
          if (best < 0 || best_score <= 0.0) {
            if (new_bin_fits) {
              Bin bin;
              bin.counts.assign(N, 0);
              bin.used.assign(R, 0.0);
              bins.push_back(std::move(bin));
              best = static_cast<int>(bins.size() - 1);
            }
          }
        }
        if (best < 0) continue;
        ++bins[best].counts[s];
        for (int r = 0; r < R; ++r) bins[best].used[r] += svc.request[r];
      }
    }
  }

  // Map bins onto real machines: first-fit-decreasing by CPU usage. This is
  // where the single-machine-size assumption bites on heterogeneous
  // clusters: bins sized for the smallest spec waste large machines, and
  // anti-affinity/schedulability can reject whole bins.
  Placement placement(cluster);
  std::vector<int> bin_order(bins.size());
  std::iota(bin_order.begin(), bin_order.end(), 0);
  std::sort(bin_order.begin(), bin_order.end(), [&](int a, int b) {
    return bins[a].used[0] > bins[b].used[0];
  });
  std::vector<bool> machine_taken(cluster.num_machines(), false);
  for (int b : bin_order) {
    int chosen = -1;
    for (int m = 0; m < cluster.num_machines(); ++m) {
      if (machine_taken[m]) continue;
      bool fits = true;
      for (int r = 0; r < R; ++r) {
        if (bins[b].used[r] > cluster.machine(m).capacity[r] + 1e-9) {
          fits = false;
          break;
        }
      }
      if (fits) {
        chosen = m;
        break;
      }
    }
    if (chosen < 0) continue;  // the whole bin falls back to first-fit
    for (int s = 0; s < N; ++s) {
      for (int c = 0; c < bins[b].counts[s]; ++c) {
        if (placement.CanPlace(chosen, s)) placement.Add(chosen, s);
      }
    }
    machine_taken[chosen] = true;
  }

  // Non-affinity services and packing failures fall back to first-fit.
  for (int s = 0; s < N; ++s) {
    const int missing = cluster.service(s).demand - placement.TotalOf(s);
    for (int c = 0; c < missing; ++c) {
      if (FallbackPlaceOne(cluster, placement, s) < 0) {
        ++result.lost_containers;
      }
    }
  }

  if (deadline.Expired()) result.out_of_time = true;
  result.gained_affinity = GainedAffinity(cluster, placement);
  result.placement = std::move(placement);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace rasa
