// rasa_cli — command-line front end for the library.
//
// Every invocation is parsed ONCE into a validated `CliConfig` before any
// work runs: subcommand, positional operands, and flags all come from one
// declarative registry (kCommands / kFlags below). `rasa_cli help` and
// `rasa_cli help <subcommand>` are generated from that registry, so the
// help text cannot drift from what the parser accepts, and an unknown or
// misplaced flag is a hard error (exit 2) instead of a silent ignore.
//
// Run `rasa_cli help` for the subcommand list and `rasa_cli help workflow`
// (etc.) for per-subcommand operands and flags.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/serialization.h"
#include "common/durable_io.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/telemetry.h"
#include "core/explain.h"
#include "core/recovery.h"
#include "core/objective.h"
#include "core/rasa.h"
#include "graph/powerlaw_fit.h"
#include "sim/workflow.h"

namespace {

using namespace rasa;

// ---------------------------------------------------------------------------
// CliConfig: the single parsed + validated form of a command line.
// ---------------------------------------------------------------------------

struct CliConfig {
  std::string command;
  std::vector<std::string> args;  // positional operands after the subcommand

  // Flag values (every flag lives here; the registry below says which
  // subcommands accept which).
  int threads = 1;
  std::string metrics_out;
  bool trace = false;
  std::string trace_out;
  std::string state_dir;
  bool resume = false;
  bool incremental = false;
  std::string telemetry_dir;
  std::string log_level;
  std::string log_jsonl;
  bool follow = false;
};

// Bitmask of subcommands a flag applies to.
enum CommandBit : unsigned {
  kGenerate = 1u << 0,
  kStats = 1u << 1,
  kOptimize = 1u << 2,
  kWorkflow = 1u << 3,
  kExplain = 1u << 4,
  kRecover = 1u << 5,
  kTail = 1u << 6,
};

struct CommandSpec {
  const char* name;
  unsigned bit;
  int min_args;
  int max_args;
  const char* synopsis;  // positional operands
  const char* help;
};

constexpr CommandSpec kCommands[] = {
    {"generate", kGenerate, 3, 3, "<M1|M2|M3|M4> <scale> <out.snapshot>",
     "Generate a synthetic cluster snapshot and write it to disk.\n"
     "Scale 1 reproduces the preset's Table II row exactly; the default\n"
     "bench scale is 16."},
    {"stats", kStats, 1, 1, "<in.snapshot>",
     "Print the cluster's scale, affinity structure, and current gained\n"
     "affinity."},
    {"optimize", kOptimize, 1, 3, "<in.snapshot> [timeout_s] [out.snapshot]",
     "Run the RASA algorithm on the snapshot; print the improvement and\n"
     "the migration plan summary; optionally write the optimized snapshot\n"
     "back to disk."},
    {"workflow", kWorkflow, 1, 5,
     "<in.snapshot> [cycles] [fail_prob] [cordon_after] [seed]",
     "Simulate the periodic CronJob workflow with the hardened migration\n"
     "executor; with fail_prob > 0 or cordon_after >= 0 the chaos harness\n"
     "injects command failures / a mid-migration machine cordon. With\n"
     "--state-dir=DIR the loop is crash-safe: every cycle is checkpointed\n"
     "and migrations run under a write-ahead journal; adding --resume\n"
     "recovers an interrupted run and continues at the interrupted cycle."},
    {"explain", kExplain, 1, 3, "<in.snapshot> [cycles] [timeout_s]",
     "Run the workflow with noise-free measurement and print each cycle's\n"
     "explain report: per-subproblem solver records, the optimality-gap\n"
     "certificate, the attribution waterfall, and the placement diff.\n"
     "With --metrics-out, the same data is embedded as the JSON \"report\"\n"
     "section."},
    {"recover", kRecover, 1, 1, "<state-dir>",
     "Inspect a durable state directory without resuming: checkpoint\n"
     "summary, journal records, and the applied / not-applied / torn\n"
     "classification of any in-flight migration commands."},
    {"tail", kTail, 1, 1, "<telemetry-dir>",
     "Render the per-cycle telemetry journal written by\n"
     "`workflow --telemetry-dir=DIR` as a cycle table with SLO burn-rate\n"
     "and anomaly columns. With --follow, keeps polling the journal and\n"
     "appends new cycles as the workflow writes them (live tailing)."},
};

struct FlagSpec {
  const char* name;        // including the leading "--"
  unsigned commands;       // which subcommands accept it
  const char* value_name;  // nullptr for presence-only flags
  const char* help;
  // Parses `value` into `config`; returns false on a malformed value.
  bool (*apply)(CliConfig& config, const std::string& value);
};

constexpr unsigned kRunCommands = kOptimize | kWorkflow | kExplain;
constexpr unsigned kAllCommands =
    kGenerate | kStats | kOptimize | kWorkflow | kExplain | kRecover | kTail;

const FlagSpec kFlags[] = {
    {"--threads", kRunCommands, "N",
     "solver worker threads (0 = one per hardware thread, default 1 =\n"
     "sequential). The optimized placement is bit-identical at every\n"
     "thread count.",
     [](CliConfig& c, const std::string& v) {
       char* end = nullptr;
       const long n = std::strtol(v.c_str(), &end, 10);
       if (end == v.c_str() || *end != '\0' || n < 0) return false;
       c.threads = static_cast<int>(n);
       return true;
     }},
    {"--metrics-out", kRunCommands, "FILE",
     "after the run, scrape the metric registry and write a\n"
     "machine-readable JSON report (counters, gauges, histograms; for\n"
     "`workflow` also the per-cycle snapshots; plus the trace when\n"
     "--trace is on).",
     [](CliConfig& c, const std::string& v) {
       if (v.empty()) return false;
       c.metrics_out = v;
       return true;
     }},
    {"--trace", kRunCommands, nullptr,
     "record the hierarchical phase timeline and print it as an indented\n"
     "tree on stderr.",
     [](CliConfig& c, const std::string&) {
       c.trace = true;
       return true;
     }},
    {"--state-dir", kWorkflow, "DIR",
     "durable checkpoints + migration write-ahead journal in DIR.",
     [](CliConfig& c, const std::string& v) {
       if (v.empty()) return false;
       c.state_dir = v;
       return true;
     }},
    {"--resume", kWorkflow, nullptr,
     "recover + resume an interrupted run from --state-dir.",
     [](CliConfig& c, const std::string&) {
       c.resume = true;
       return true;
     }},
    {"--incremental", kWorkflow, nullptr,
     "delta-aware re-optimization: re-solve only the partitions the\n"
     "snapshot differ marks dirty (implies noise-free measurement; see\n"
     "DESIGN.md).",
     [](CliConfig& c, const std::string&) {
       c.incremental = true;
       return true;
     }},
    {"--trace-out", kRunCommands, "FILE",
     "write the recorded phase timeline as Chrome trace-event JSON\n"
     "(loadable in Perfetto / chrome://tracing) to FILE via an atomic\n"
     "write; implies --trace. Without this flag --trace keeps printing\n"
     "the indented tree to stderr as before.",
     [](CliConfig& c, const std::string& v) {
       if (v.empty()) return false;
       c.trace = true;
       c.trace_out = v;
       return true;
     }},
    {"--telemetry-dir", kWorkflow, "DIR",
     "continuous telemetry: per-cycle SLO/anomaly evaluation recorded\n"
     "into each cycle report, a JSONL journal streamed to\n"
     "DIR/telemetry.jsonl (fsync per line — `rasa_cli tail DIR` can\n"
     "follow a live run), and an OpenMetrics exposition of the registry\n"
     "written to DIR/metrics.om after the run.",
     [](CliConfig& c, const std::string& v) {
       if (v.empty()) return false;
       c.telemetry_dir = v;
       return true;
     }},
    {"--log-level", kAllCommands, "LEVEL",
     "minimum log severity: debug|info|warning|error (or 0-3).\n"
     "Overrides the RASA_LOG_LEVEL environment variable.",
     [](CliConfig& c, const std::string& v) {
       if (v.empty()) return false;
       c.log_level = v;
       return true;
     }},
    {"--log-jsonl", kAllCommands, "FILE",
     "mirror every emitted log record to FILE as JSONL\n"
     "({ts, severity, subsystem, message}); same records the console\n"
     "sees after the severity filter. Overrides RASA_LOG_JSONL.",
     [](CliConfig& c, const std::string& v) {
       if (v.empty()) return false;
       c.log_jsonl = v;
       return true;
     }},
    {"--follow", kTail, nullptr,
     "keep polling the journal and append new cycles as they are\n"
     "written (Ctrl-C to stop).",
     [](CliConfig& c, const std::string&) {
       c.follow = true;
       return true;
     }},
};

const CommandSpec* FindCommand(const std::string& name) {
  for (const CommandSpec& cmd : kCommands) {
    if (name == cmd.name) return &cmd;
  }
  return nullptr;
}

// Prints `text` with every line prefixed by `indent`.
void PrintIndented(const char* indent, const char* text) {
  const char* line = text;
  while (*line != '\0') {
    const char* nl = std::strchr(line, '\n');
    const size_t len = nl != nullptr ? static_cast<size_t>(nl - line)
                                     : std::strlen(line);
    std::fprintf(stderr, "%s%.*s\n", indent, static_cast<int>(len), line);
    line += len + (nl != nullptr ? 1 : 0);
  }
}

// `rasa_cli help`: the one-screen overview, generated from kCommands.
int HelpOverview() {
  std::fprintf(stderr, "usage: rasa_cli <subcommand> [flags] <operands...>\n");
  std::fprintf(stderr, "subcommands:\n");
  for (const CommandSpec& cmd : kCommands) {
    std::fprintf(stderr, "  rasa_cli %s %s\n", cmd.name, cmd.synopsis);
  }
  std::fprintf(stderr,
               "run `rasa_cli help <subcommand>` for its operands and "
               "flags.\n");
  return 2;
}

// `rasa_cli help <subcommand>`: operands + the flags this subcommand
// accepts, straight from the registry.
int HelpCommand(const std::string& name) {
  const CommandSpec* cmd = FindCommand(name);
  if (cmd == nullptr) {
    std::fprintf(stderr, "rasa_cli: unknown subcommand '%s'\n", name.c_str());
    return HelpOverview();
  }
  std::fprintf(stderr, "usage: rasa_cli %s [flags] %s\n", cmd->name,
               cmd->synopsis);
  PrintIndented("  ", cmd->help);
  bool any = false;
  for (const FlagSpec& flag : kFlags) {
    if ((flag.commands & cmd->bit) == 0) continue;
    if (!any) std::fprintf(stderr, "flags:\n");
    any = true;
    if (flag.value_name != nullptr) {
      std::fprintf(stderr, "  %s=%s\n", flag.name, flag.value_name);
    } else {
      std::fprintf(stderr, "  %s\n", flag.name);
    }
    PrintIndented("      ", flag.help);
  }
  if (!any) std::fprintf(stderr, "flags: none\n");
  return 2;
}

// Parses argv into `config`. Flags may appear anywhere after the
// subcommand; anything else is a positional operand. Unknown flags, flags
// the subcommand does not accept, malformed values, and bad operand
// counts are all hard errors.
int ParseCliConfig(int argc, char** argv, CliConfig& config) {
  if (argc < 2) return HelpOverview();
  config.command = argv[1];
  if (config.command == "help" || config.command == "--help" ||
      config.command == "-h") {
    return argc > 2 ? HelpCommand(argv[2]) : HelpOverview();
  }
  const CommandSpec* cmd = FindCommand(config.command);
  if (cmd == nullptr) {
    std::fprintf(stderr, "rasa_cli: unknown subcommand '%s'\n",
                 config.command.c_str());
    return HelpOverview();
  }

  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      config.args.push_back(arg);
      continue;
    }
    // Split --name=value.
    const char* eq = std::strchr(arg, '=');
    const std::string name =
        eq != nullptr ? std::string(arg, eq - arg) : std::string(arg);
    const FlagSpec* match = nullptr;
    for (const FlagSpec& flag : kFlags) {
      if (name == flag.name) {
        match = &flag;
        break;
      }
    }
    if (match == nullptr) {
      std::fprintf(stderr,
                   "rasa_cli: unknown flag %s (try `rasa_cli help %s`)\n",
                   name.c_str(), cmd->name);
      return 2;
    }
    if ((match->commands & cmd->bit) == 0) {
      std::fprintf(stderr, "rasa_cli: flag %s is not accepted by '%s' (try "
                           "`rasa_cli help %s`)\n",
                   name.c_str(), cmd->name, cmd->name);
      return 2;
    }
    std::string value;
    if (match->value_name != nullptr) {
      if (eq != nullptr) {
        value = eq + 1;
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "rasa_cli: flag %s needs a value (%s=%s)\n",
                     name.c_str(), name.c_str(), match->value_name);
        return 2;
      }
    } else if (eq != nullptr) {
      std::fprintf(stderr, "rasa_cli: flag %s takes no value\n", name.c_str());
      return 2;
    }
    if (!match->apply(config, value)) {
      std::fprintf(stderr, "rasa_cli: bad value for %s: '%s'\n", name.c_str(),
                   value.c_str());
      return 2;
    }
  }

  const int num_args = static_cast<int>(config.args.size());
  if (num_args < cmd->min_args || num_args > cmd->max_args) {
    std::fprintf(stderr, "rasa_cli: %s expects %s, got %d operand%s\n",
                 cmd->name, cmd->synopsis, num_args,
                 num_args == 1 ? "" : "s");
    return HelpCommand(cmd->name);
  }
  // Cross-flag validation.
  if (config.resume && config.state_dir.empty()) {
    std::fprintf(stderr, "rasa_cli: --resume requires --state-dir\n");
    return 2;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Subcommand implementations (all consume the validated CliConfig).
// ---------------------------------------------------------------------------

// Post-run observability output: writes the JSON report (registry scrape +
// optional per-cycle workflow snapshots + completed trace spans + explain
// reports) and prints the human-readable trace tree. `single_run` embeds
// one Optimize run's explain report; `explain_cycles` embeds every
// workflow cycle's. Returns false if the file write failed.
bool EmitObservability(const CliConfig& config, const WorkflowReport* workflow,
                       const RasaResult* single_run = nullptr,
                       bool explain_cycles = false) {
  if (config.trace) {
    if (!config.trace_out.empty()) {
      // Crash-atomic like --metrics-out; the file is Perfetto-loadable
      // Chrome trace-event JSON.
      const Status written = AtomicWriteFile(
          config.trace_out, ChromeTraceJson(Tracer::Default().Events()) + "\n");
      if (!written.ok()) {
        std::fprintf(stderr, "trace: cannot write %s: %s\n",
                     config.trace_out.c_str(), written.ToString().c_str());
        return false;
      }
      std::fprintf(stderr, "trace: wrote %s\n", config.trace_out.c_str());
    } else {
      std::fprintf(stderr, "--- phase trace ---\n%s",
                   Tracer::Default().SummaryTree().c_str());
    }
  }
  if (config.metrics_out.empty()) return true;
  JsonWriter w;
  w.BeginObject();
  w.Key("metrics");
  MetricRegistry::Default().Scrape().AppendJson(w);
  if (workflow != nullptr) {
    w.Key("cycles").BeginArray();
    for (const CycleReport& cr : workflow->cycles) {
      cr.metrics.AppendJson(w);
    }
    w.EndArray();
  }
  if (single_run != nullptr) {
    w.Key("report");
    AppendExplainJson(w, single_run->report);
  }
  if (workflow != nullptr && explain_cycles) {
    w.Key("report").BeginArray();
    for (size_t c = 0; c < workflow->cycles.size(); ++c) {
      const CycleReport& cr = workflow->cycles[c];
      w.BeginObject();
      w.Key("cycle").Value(static_cast<int>(c));
      w.Key("affinity_before").Value(cr.affinity_before);
      w.Key("affinity_after").Value(cr.affinity_after);
      w.Key("predicted_affinity").Value(cr.predicted_affinity);
      w.Key("executed").Value(cr.executed);
      w.Key("rolled_back").Value(cr.rolled_back);
      w.Key("migration_truncation").Value(cr.migration_truncation);
      w.Key("explain");
      AppendExplainJson(w, cr.explain);
      w.EndObject();
    }
    w.EndArray();
  }
  if (config.trace) {
    w.Key("trace");
    Tracer::Default().AppendJson(w);
  }
  w.EndObject();
  // Crash-atomic: a report file is either absent or complete, never torn.
  const Status written = AtomicWriteFile(config.metrics_out, w.str() + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "metrics: cannot write %s: %s\n",
                 config.metrics_out.c_str(), written.ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "metrics: wrote %s\n", config.metrics_out.c_str());
  return true;
}

int Generate(const CliConfig& config) {
  const std::string& preset = config.args[0];
  const double scale = std::atof(config.args[1].c_str());
  ClusterSpec spec;
  if (preset == "M1") {
    spec = M1Spec(scale);
  } else if (preset == "M2") {
    spec = M2Spec(scale);
  } else if (preset == "M3") {
    spec = M3Spec(scale);
  } else if (preset == "M4") {
    spec = M4Spec(scale);
  } else {
    std::fprintf(stderr, "rasa_cli: unknown preset '%s' (M1|M2|M3|M4)\n",
                 preset.c_str());
    return 2;
  }
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  const Status saved = SaveSnapshotToFile(*snapshot, config.args[2]);
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d services, %d containers, %d machines\n",
              config.args[2].c_str(), snapshot->cluster->num_services(),
              snapshot->cluster->num_containers(),
              snapshot->cluster->num_machines());
  return 0;
}

int Stats(const CliConfig& config) {
  StatusOr<ClusterSnapshot> snapshot = LoadSnapshotFromFile(config.args[0]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  const Cluster& cluster = *snapshot->cluster;
  std::printf("%s: %d services, %d containers, %d machines, %d resources\n",
              snapshot->name.c_str(), cluster.num_services(),
              cluster.num_containers(), cluster.num_machines(),
              cluster.num_resources());
  std::printf("affinity: %d edges, total weight %.4f\n",
              cluster.affinity().num_edges(), cluster.affinity().TotalWeight());
  const int top = std::max(1, cluster.num_services() / 10);
  std::printf("top-10%% services hold %.1f%% of total affinity\n",
              100.0 * TopKAffinityShare(cluster.affinity(), top));
  std::printf("anti-affinity rules: %zu\n", cluster.anti_affinity().size());
  std::printf("current gained affinity: %.4f\n",
              GainedAffinity(cluster, snapshot->original_placement));
  std::printf("placement feasible (incl. SLA): %s\n",
              snapshot->original_placement.CheckFeasible(true).ok() ? "yes"
                                                                    : "no");
  return 0;
}

int Optimize(const CliConfig& config) {
  StatusOr<ClusterSnapshot> snapshot = LoadSnapshotFromFile(config.args[0]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  RasaOptions options;
  options.timeout_seconds =
      config.args.size() > 1 ? std::atof(config.args[1].c_str()) : 2.0;
  options.num_threads = config.threads;
  RasaOptimizer optimizer(options,
                          AlgorithmSelector(SelectorPolicy::kHeuristic));
  StatusOr<RasaResult> result =
      optimizer.Optimize(*snapshot->cluster, snapshot->original_placement);
  if (!result.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("gained affinity: %.4f -> %.4f (%.2fx) in %.2fs (%d threads)\n",
              result->original_gained_affinity, result->new_gained_affinity,
              result->new_gained_affinity /
                  std::max(1e-9, result->original_gained_affinity),
              result->elapsed_seconds, result->num_threads_used);
  std::printf("moved containers: %d / %d\n", result->moved_containers,
              snapshot->cluster->num_containers());
  if (result->should_execute) {
    std::printf("migration plan: %s\n", result->migration.Summary().c_str());
  } else {
    std::printf("dry-run (improvement below threshold)\n");
  }
  if (config.args.size() > 2) {
    ClusterSnapshot optimized{snapshot->name + "-optimized",
                              snapshot->cluster, result->new_placement};
    const Status saved = SaveSnapshotToFile(optimized, config.args[2]);
    if (!saved.ok()) {
      std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote optimized snapshot to %s\n", config.args[2].c_str());
  }
  return EmitObservability(config, nullptr, &*result) ? 0 : 1;
}

int Workflow(const CliConfig& config) {
  StatusOr<ClusterSnapshot> snapshot = LoadSnapshotFromFile(config.args[0]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  WorkflowOptions options;
  options.rasa.num_threads = config.threads;
  options.cycles =
      config.args.size() > 1 ? std::atoi(config.args[1].c_str()) : 6;
  const double fail_prob =
      config.args.size() > 2 ? std::atof(config.args[2].c_str()) : 0.0;
  const long cordon_after =
      config.args.size() > 3 ? std::atol(config.args[3].c_str()) : -1;
  options.seed = config.args.size() > 4
                     ? std::strtoull(config.args[4].c_str(), nullptr, 10)
                     : 99;
  options.inject_faults = fail_prob > 0.0 || cordon_after >= 0;
  options.faults.command_failure_probability = fail_prob;
  options.faults.cordon_after_commands = cordon_after;
  options.faults.seed = options.seed + 1;
  options.state_dir = config.state_dir;
  options.resume = config.resume;
  options.incremental = config.incremental;
  options.telemetry_dir = config.telemetry_dir;
  // Per-cycle measurement noise re-randomizes every affinity weight, which
  // the snapshot differ reports as full drift; incremental mode only pays
  // off with exact measurement (see WorkflowOptions::incremental).
  if (config.incremental) options.measurement_noise = 0.0;

  // The simulated cluster cannot be queried after a crash, so a resumed run
  // reconstructs the placement a restarted controller would observe from
  // the durable state (checkpoint + committed journal batches).
  Placement initial = snapshot->original_placement;
  if (config.resume) {
    StatusOr<RecoveryAnalysis> analysis =
        AnalyzeWorkflowState(config.state_dir);
    if (!analysis.ok()) {
      std::fprintf(stderr, "workflow: recovery analysis failed: %s\n",
                   analysis.status().ToString().c_str());
      return 1;
    }
    StatusOr<Placement> observed = ReconstructObservedPlacement(*analysis);
    if (!observed.ok()) {
      std::fprintf(stderr, "workflow: cannot reconstruct placement: %s\n",
                   observed.status().ToString().c_str());
      return 1;
    }
    initial = std::move(observed).value();
  }

  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot->cluster, initial,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  if (!report.ok()) {
    std::fprintf(stderr, "workflow: %s\n", report.status().ToString().c_str());
    return 1;
  }
  if (report->resumed_cycle >= 0) {
    const RecoveryStats& rec = report->recovery;
    std::printf(
        "recovery: resumed at cycle %d%s%s; commands %d applied pre-crash, "
        "%d not applied, %d torn; rolled forward %d commands / %d batches / "
        "%d drift moves; %d phases abandoned; %d cycles completed from "
        "journal\n",
        report->resumed_cycle,
        rec.used_previous_checkpoint ? " (previous checkpoint)" : "",
        rec.journal_torn_tail ? " (journal tail torn)" : "",
        rec.commands_applied_pre_crash, rec.commands_not_applied,
        rec.commands_torn, rec.commands_rolled_forward,
        rec.batches_rolled_forward, rec.drift_moves_rolled_forward,
        rec.phases_abandoned, rec.cycles_completed_from_journal);
  }
  // A resumed run's report covers cycles resumed_cycle..; print absolute
  // cycle indices so consecutive runs line up.
  const size_t first_cycle =
      report->resumed_cycle > 0 ? static_cast<size_t>(report->resumed_cycle)
                                : 0;
  for (size_t c = 0; c < report->cycles.size(); ++c) {
    const CycleReport& cr = report->cycles[c];
    std::string inc_tag;
    if (cr.incremental) {
      inc_tag = " [reused " + std::to_string(cr.reused_subproblems) + "/" +
                std::to_string(cr.reused_subproblems + cr.dirty_subproblems) +
                "]";
    } else if (!cr.incremental_reason.empty()) {
      inc_tag = " [" + cr.incremental_reason + "]";
    }
    std::string slo_tag;
    if (cr.telemetry.populated) {
      for (const SloStatus& slo : cr.telemetry.slo) {
        if (slo.alert != SloAlertState::kOk) {
          slo_tag += " [" + slo.name + ":" + SloAlertStateName(slo.alert) + "]";
        }
      }
      if (cr.telemetry.gap.anomalous) slo_tag += " [gap-anomaly]";
    }
    std::printf(
        "cycle %2zu: affinity %.4f -> %.4f%s%s%s%s, %d moved, %d batches, "
        "%d cmd failures, %d retries, %d replans (%.2fs)\n",
        first_cycle + c, cr.affinity_before, cr.affinity_after,
        cr.executed ? (cr.reached_target ? " [executed]" : " [partial]")
                    : (cr.rolled_back ? " [rolled back]" : " [dry-run]"),
        cr.solver_failed
            ? " [solver failed]"
            : (cr.recovered ? " [recovered]" : ""),
        inc_tag.c_str(), slo_tag.c_str(), cr.moved_containers,
        cr.migration_batches, cr.commands_failed, cr.command_retries,
        cr.replans, cr.seconds);
  }
  std::printf(
      "totals: %d executions (%d partial), %d dry-runs, %d rollbacks, "
      "%d solver failures\n",
      report->executions, report->partial_executions, report->dry_runs,
      report->rollbacks, report->solver_failures);
  std::printf(
      "chaos:  %d command failures, %d retries, %d replans, "
      "%d SLA violations, %d feasibility violations\n",
      report->commands_failed, report->command_retries, report->replans,
      report->sla_violations, report->feasibility_violations);
  std::printf("final gained affinity: %.4f (feasible: %s)\n",
              GainedAffinity(*snapshot->cluster, report->final_placement),
              report->final_placement.CheckFeasible(true).ok() ? "yes" : "no");
  if (!config.telemetry_dir.empty()) {
    // The journal streamed during the run; the exposition-format scrape is
    // an end-of-run artifact (what a Prometheus endpoint would serve).
    const Status om =
        AtomicWriteFile(config.telemetry_dir + "/metrics.om",
                        OpenMetricsText(MetricRegistry::Default().Scrape()));
    if (!om.ok()) {
      std::fprintf(stderr, "telemetry: cannot write metrics.om: %s\n",
                   om.ToString().c_str());
      return 1;
    }
    std::printf("telemetry: wrote %s/telemetry.jsonl and %s/metrics.om\n",
                config.telemetry_dir.c_str(), config.telemetry_dir.c_str());
  }
  if (!EmitObservability(config, &*report)) return 1;
  return report->sla_violations + report->feasibility_violations == 0 ? 0 : 3;
}

// Inspects a durable state directory without resuming anything.
int Recover(const CliConfig& config) {
  StatusOr<std::string> inspection =
      FormatRecoveryInspection(config.args[0]);
  if (!inspection.ok()) {
    std::fprintf(stderr, "recover: %s\n",
                 inspection.status().ToString().c_str());
    return 1;
  }
  std::fputs(inspection->c_str(), stdout);
  return 0;
}

// Runs the workflow with noise-free measurement and prints each cycle's
// explain report (the human-readable form of the "report" JSON section).
int Explain(const CliConfig& config) {
  StatusOr<ClusterSnapshot> snapshot = LoadSnapshotFromFile(config.args[0]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  WorkflowOptions options;
  options.rasa.num_threads = config.threads;
  options.cycles =
      config.args.size() > 1 ? std::atoi(config.args[1].c_str()) : 1;
  options.rasa.timeout_seconds =
      config.args.size() > 2 ? std::atof(config.args[2].c_str()) : 2.0;
  // Explain the real measured weights: reports should attribute the
  // pipeline, not the measurement noise.
  options.measurement_noise = 0.0;

  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot->cluster, snapshot->original_placement,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  if (!report.ok()) {
    std::fprintf(stderr, "explain: %s\n", report.status().ToString().c_str());
    return 1;
  }
  for (size_t c = 0; c < report->cycles.size(); ++c) {
    const CycleReport& cr = report->cycles[c];
    std::printf("=== cycle %zu: affinity %.4f -> %.4f%s ===\n", c,
                cr.affinity_before, cr.affinity_after,
                cr.executed ? (cr.reached_target ? " [executed]" : " [partial]")
                            : (cr.rolled_back ? " [rolled back]"
                                              : " [dry-run]"));
    if (cr.executed) {
      std::printf("migration truncation: %.6f (predicted %.4f, achieved "
                  "%.4f)\n",
                  cr.migration_truncation, cr.predicted_affinity,
                  cr.affinity_after);
    }
    if (cr.solver_failed) {
      std::printf("optimizer failed this cycle; no explain report\n");
      continue;
    }
    std::fputs(FormatExplainReport(cr.explain).c_str(), stdout);
  }
  return EmitObservability(config, &*report, nullptr, true) ? 0 : 1;
}

// --- tail -----------------------------------------------------------------

// Number/bool accessors that treat missing or mistyped keys as defaults:
// the journal may be mid-write (torn last line) or from a newer schema.
double JournalNumber(const JsonValue& line, const char* key) {
  const JsonValue* v = line.Get(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kNumber) ? v->number
                                                               : 0.0;
}

bool JournalFlag(const JsonValue& line, const char* key) {
  const JsonValue* v = line.Get(key);
  return v != nullptr && v->kind == JsonValue::Kind::kBool && v->boolean;
}

// Worst SLO alert across the cycle plus its burn rates, e.g.
// "latency_p99:page f=28.8 s=7.2"; "ok" when every objective is green.
std::string WorstSloCell(const JsonValue& line) {
  const JsonValue* slo = line.Get("slo");
  if (slo == nullptr || slo->kind != JsonValue::Kind::kArray) return "-";
  int worst_rank = 0;
  std::string cell = "ok";
  for (const JsonValue& status : slo->array) {
    const JsonValue* alert = status.Get("alert");
    const JsonValue* name = status.Get("name");
    if (alert == nullptr || alert->kind != JsonValue::Kind::kString) continue;
    int rank = 0;
    if (alert->string == "fast-burn" || alert->string == "slow-burn") rank = 1;
    if (alert->string == "page") rank = 2;
    if (rank == 0 || rank <= worst_rank) continue;
    worst_rank = rank;
    cell = (name != nullptr ? name->string : "?") + ":" + alert->string +
           StrFormat(" f=%.1f s=%.1f", JournalNumber(status, "fast_burn"),
                     JournalNumber(status, "slow_burn"));
  }
  return cell;
}

void PrintTailHeader() {
  std::printf("%5s %8s %9s %9s %8s %9s %-12s %-6s %s\n", "cycle", "secs",
              "affinity", "gap", "p99", "err", "status", "anom", "slo");
}

void PrintTailRow(const JsonValue& line) {
  const char* status = "dry-run";
  if (JournalFlag(line, "executed")) status = "executed";
  if (JournalFlag(line, "rolled_back")) status = "rolled-back";
  if (JournalFlag(line, "solver_failed")) status = "solver-fail";
  std::string anom;
  const JsonValue* cost = line.Get("cost_anomaly");
  const JsonValue* gap = line.Get("gap_anomaly");
  if (cost != nullptr && JournalFlag(*cost, "anomalous")) anom += "C";
  if (gap != nullptr && JournalFlag(*gap, "anomalous")) anom += "G";
  if (anom.empty()) anom = "-";
  std::printf("%5d %8.2f %9.4f %9.6f %8.4f %9.6f %-12s %-6s %s\n",
              static_cast<int>(JournalNumber(line, "cycle")),
              JournalNumber(line, "seconds"),
              JournalNumber(line, "gained_affinity"),
              JournalNumber(line, "optimality_gap"),
              JournalNumber(line, "latency_p99"),
              JournalNumber(line, "error_rate"), status, anom.c_str(),
              WorstSloCell(line).c_str());
}

// Renders `<dir>/telemetry.jsonl` as a cycle table; with --follow, keeps
// polling for appended lines (the journal is fsync'd per line, so a tail
// sees complete records plus at most one torn line, which is retried on
// the next poll once its newline lands).
int Tail(const CliConfig& config) {
  const std::string path = config.args[0] + "/telemetry.jsonl";
  size_t offset = 0;      // bytes of the journal already rendered
  bool printed_any = false;
  for (;;) {
    StatusOr<std::string> content = ReadFileToString(path);
    if (!content.ok()) {
      if (!config.follow) {
        std::fprintf(stderr, "tail: %s\n",
                     content.status().ToString().c_str());
        return 1;
      }
      // --follow before the run opened the journal: wait for it to appear.
    } else {
      while (offset < content->size()) {
        const size_t newline = content->find('\n', offset);
        if (newline == std::string::npos) break;  // torn line, retry later
        const std::string record = content->substr(offset, newline - offset);
        offset = newline + 1;
        if (record.empty()) continue;
        StatusOr<JsonValue> line = ParseJson(record);
        if (!line.ok()) {
          std::fprintf(stderr, "tail: skipping malformed line: %s\n",
                       line.status().ToString().c_str());
          continue;
        }
        if (!printed_any) {
          PrintTailHeader();
          printed_any = true;
        }
        PrintTailRow(*line);
      }
      std::fflush(stdout);
    }
    if (!config.follow) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
  if (!printed_any) std::printf("(no complete journal lines in %s)\n",
                                path.c_str());
  return 0;
}

// Maps --log-level values (words or the RASA_LOG_LEVEL digits) onto the
// logging threshold. Returns false on an unknown value.
bool ApplyLogLevel(const std::string& value) {
  if (value == "debug" || value == "0") {
    SetLogLevel(LogLevel::kDebug);
  } else if (value == "info" || value == "1") {
    SetLogLevel(LogLevel::kInfo);
  } else if (value == "warning" || value == "2") {
    SetLogLevel(LogLevel::kWarning);
  } else if (value == "error" || value == "3") {
    SetLogLevel(LogLevel::kError);
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliConfig config;
  const int parse_status = ParseCliConfig(argc, argv, config);
  if (parse_status != 0) return parse_status;
  if (!config.log_level.empty() && !ApplyLogLevel(config.log_level)) {
    std::fprintf(stderr, "unknown --log-level '%s' (want debug|info|warning|"
                 "error or 0-3)\n", config.log_level.c_str());
    return 2;
  }
  if (!config.log_jsonl.empty()) rasa::SetLogJsonlPath(config.log_jsonl);
  if (config.trace) rasa::Tracer::Default().Enable(true);
  if (config.command == "generate") return Generate(config);
  if (config.command == "stats") return Stats(config);
  if (config.command == "optimize") return Optimize(config);
  if (config.command == "workflow") return Workflow(config);
  if (config.command == "explain") return Explain(config);
  if (config.command == "recover") return Recover(config);
  if (config.command == "tail") return Tail(config);
  // Unreachable: ParseCliConfig rejected unknown subcommands.
  return HelpOverview();
}
