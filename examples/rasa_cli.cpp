// rasa_cli — command-line front end for the library.
//
//   rasa_cli generate <M1|M2|M3|M4> <scale> <out.snapshot>
//       Generate a synthetic cluster snapshot and write it to disk.
//   rasa_cli stats <in.snapshot>
//       Print the cluster's scale, affinity structure, and current
//       gained affinity.
//   rasa_cli optimize <in.snapshot> [timeout_s] [out.snapshot]
//       Run the RASA algorithm on the snapshot; print the improvement and
//       the migration plan summary; optionally write the optimized
//       snapshot back to disk.
//   rasa_cli workflow <in.snapshot> [cycles] [fail_prob] [cordon_after] [seed]
//       Simulate the periodic CronJob workflow with the hardened migration
//       executor; with fail_prob > 0 or cordon_after >= 0 the chaos
//       harness injects command failures / a mid-migration machine cordon.
//       With --state-dir=DIR the loop is crash-safe: every cycle is
//       checkpointed and migrations run under a write-ahead journal; adding
//       --resume recovers an interrupted run (reconciling the journal
//       against the durable state) and continues at the interrupted cycle.
//   rasa_cli recover <state-dir>
//       Inspect a durable state directory without resuming: checkpoint
//       summary, journal records, and the applied / not-applied / torn
//       classification of any in-flight migration commands.
//   rasa_cli explain <in.snapshot> [cycles] [timeout_s]
//       Run the workflow with noise-free measurement and print each
//       cycle's explain report: per-subproblem solver records, the
//       optimality-gap certificate, the attribution waterfall, and the
//       placement diff. With --metrics-out, the same data is embedded as
//       the JSON "report" section.
//
// `optimize` and `workflow` additionally accept anywhere on the command
// line:
//   --threads N          N solver worker threads (0 = one per hardware
//                        thread, default 1 = sequential). The optimized
//                        placement is bit-identical at every thread count
//                        and with metrics on or off.
//   --metrics-out=FILE   after the run, scrape the metric registry and
//                        write a machine-readable JSON report (counters,
//                        gauges, histograms; for `workflow` also the
//                        per-cycle snapshots; plus the trace when --trace
//                        is on).
//   --trace              record the hierarchical phase timeline and print
//                        it as an indented tree on stderr.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "cluster/serialization.h"
#include "common/durable_io.h"
#include "common/json_writer.h"
#include "common/metrics.h"
#include "core/explain.h"
#include "core/recovery.h"
#include "core/objective.h"
#include "core/rasa.h"
#include "graph/powerlaw_fit.h"
#include "sim/workflow.h"

namespace {

using namespace rasa;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  rasa_cli generate <M1|M2|M3|M4> <scale> <out.snapshot>\n"
      "  rasa_cli stats <in.snapshot>\n"
      "  rasa_cli optimize [flags] <in.snapshot> [timeout_s] "
      "[out.snapshot]\n"
      "  rasa_cli workflow [flags] <in.snapshot> [cycles] [fail_prob] "
      "[cordon_after] [seed]\n"
      "  rasa_cli explain [flags] <in.snapshot> [cycles] [timeout_s]\n"
      "  rasa_cli recover <state-dir>\n"
      "flags (optimize/workflow, anywhere on the line):\n"
      "  --threads N         solver worker threads (0 = hardware threads)\n"
      "  --metrics-out=FILE  write a JSON metrics/trace report after the "
      "run\n"
      "  --trace             record + print the phase timeline\n"
      "flags (workflow only):\n"
      "  --state-dir=DIR     durable checkpoints + migration write-ahead "
      "journal in DIR\n"
      "  --resume            recover + resume an interrupted run from "
      "--state-dir\n"
      "  --incremental       delta-aware re-optimization: re-solve only the "
      "partitions\n"
      "                      the snapshot differ marks dirty (implies "
      "noise-free\n"
      "                      measurement; see DESIGN.md)\n");
  return 2;
}

// Extracts `--threads N` from argv (compacting the remaining arguments) and
// returns N; 1 when the flag is absent.
int ExtractThreads(int& argc, char** argv) {
  int threads = 1;
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return threads;
}

// Extracts `<flag>=VALUE` (or `<flag> VALUE`) from argv and returns VALUE;
// empty when absent.
std::string ExtractStringFlag(int& argc, char** argv, const char* flag) {
  const size_t flag_len = std::strlen(flag);
  std::string value;
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, flag_len) == 0 &&
        argv[i][flag_len] == '=') {
      value = argv[i] + flag_len + 1;
      continue;
    }
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
      value = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return value;
}

// Extracts the presence of a bare `<flag>` from argv.
bool ExtractBoolFlag(int& argc, char** argv, const char* flag) {
  bool present = false;
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      present = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return present;
}

// Post-run observability output: writes the JSON report (registry scrape +
// optional per-cycle workflow snapshots + completed trace spans + explain
// reports) and prints the human-readable trace tree. `single_run` embeds
// one Optimize run's explain report; `explain_cycles` embeds every
// workflow cycle's. Returns false if the file write failed.
bool EmitObservability(const std::string& metrics_out, bool trace,
                       const WorkflowReport* workflow,
                       const RasaResult* single_run = nullptr,
                       bool explain_cycles = false) {
  if (trace) {
    std::fprintf(stderr, "--- phase trace ---\n%s",
                 Tracer::Default().SummaryTree().c_str());
  }
  if (metrics_out.empty()) return true;
  JsonWriter w;
  w.BeginObject();
  w.Key("metrics");
  MetricRegistry::Default().Scrape().AppendJson(w);
  if (workflow != nullptr) {
    w.Key("cycles").BeginArray();
    for (const CycleReport& cr : workflow->cycles) {
      cr.metrics.AppendJson(w);
    }
    w.EndArray();
  }
  if (single_run != nullptr) {
    w.Key("report");
    AppendExplainJson(w, single_run->report);
  }
  if (workflow != nullptr && explain_cycles) {
    w.Key("report").BeginArray();
    for (size_t c = 0; c < workflow->cycles.size(); ++c) {
      const CycleReport& cr = workflow->cycles[c];
      w.BeginObject();
      w.Key("cycle").Value(static_cast<int>(c));
      w.Key("affinity_before").Value(cr.affinity_before);
      w.Key("affinity_after").Value(cr.affinity_after);
      w.Key("predicted_affinity").Value(cr.predicted_affinity);
      w.Key("executed").Value(cr.executed);
      w.Key("rolled_back").Value(cr.rolled_back);
      w.Key("migration_truncation").Value(cr.migration_truncation);
      w.Key("explain");
      AppendExplainJson(w, cr.explain);
      w.EndObject();
    }
    w.EndArray();
  }
  if (trace) {
    w.Key("trace");
    Tracer::Default().AppendJson(w);
  }
  w.EndObject();
  // Crash-atomic: a report file is either absent or complete, never torn.
  const Status written = AtomicWriteFile(metrics_out, w.str() + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "metrics: cannot write %s: %s\n", metrics_out.c_str(),
                 written.ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "metrics: wrote %s\n", metrics_out.c_str());
  return true;
}

int Generate(int argc, char** argv) {
  if (argc < 5) return Usage();
  const std::string preset = argv[2];
  const double scale = std::atof(argv[3]);
  ClusterSpec spec;
  if (preset == "M1") {
    spec = M1Spec(scale);
  } else if (preset == "M2") {
    spec = M2Spec(scale);
  } else if (preset == "M3") {
    spec = M3Spec(scale);
  } else if (preset == "M4") {
    spec = M4Spec(scale);
  } else {
    return Usage();
  }
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  const Status saved = SaveSnapshotToFile(*snapshot, argv[4]);
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d services, %d containers, %d machines\n", argv[4],
              snapshot->cluster->num_services(),
              snapshot->cluster->num_containers(),
              snapshot->cluster->num_machines());
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 3) return Usage();
  StatusOr<ClusterSnapshot> snapshot = LoadSnapshotFromFile(argv[2]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  const Cluster& cluster = *snapshot->cluster;
  std::printf("%s: %d services, %d containers, %d machines, %d resources\n",
              snapshot->name.c_str(), cluster.num_services(),
              cluster.num_containers(), cluster.num_machines(),
              cluster.num_resources());
  std::printf("affinity: %d edges, total weight %.4f\n",
              cluster.affinity().num_edges(), cluster.affinity().TotalWeight());
  const int top = std::max(1, cluster.num_services() / 10);
  std::printf("top-10%% services hold %.1f%% of total affinity\n",
              100.0 * TopKAffinityShare(cluster.affinity(), top));
  std::printf("anti-affinity rules: %zu\n", cluster.anti_affinity().size());
  std::printf("current gained affinity: %.4f\n",
              GainedAffinity(cluster, snapshot->original_placement));
  std::printf("placement feasible (incl. SLA): %s\n",
              snapshot->original_placement.CheckFeasible(true).ok() ? "yes"
                                                                    : "no");
  return 0;
}

int Optimize(int argc, char** argv, int threads,
             const std::string& metrics_out, bool trace) {
  if (argc < 3) return Usage();
  StatusOr<ClusterSnapshot> snapshot = LoadSnapshotFromFile(argv[2]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  RasaOptions options;
  options.timeout_seconds = argc > 3 ? std::atof(argv[3]) : 2.0;
  options.num_threads = threads;
  RasaOptimizer optimizer(options,
                          AlgorithmSelector(SelectorPolicy::kHeuristic));
  StatusOr<RasaResult> result =
      optimizer.Optimize(*snapshot->cluster, snapshot->original_placement);
  if (!result.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("gained affinity: %.4f -> %.4f (%.2fx) in %.2fs (%d threads)\n",
              result->original_gained_affinity, result->new_gained_affinity,
              result->new_gained_affinity /
                  std::max(1e-9, result->original_gained_affinity),
              result->elapsed_seconds, result->num_threads_used);
  std::printf("moved containers: %d / %d\n", result->moved_containers,
              snapshot->cluster->num_containers());
  if (result->should_execute) {
    std::printf("migration plan: %s\n", result->migration.Summary().c_str());
  } else {
    std::printf("dry-run (improvement below threshold)\n");
  }
  if (argc > 4) {
    ClusterSnapshot optimized{snapshot->name + "-optimized",
                              snapshot->cluster, result->new_placement};
    const Status saved = SaveSnapshotToFile(optimized, argv[4]);
    if (!saved.ok()) {
      std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote optimized snapshot to %s\n", argv[4]);
  }
  return EmitObservability(metrics_out, trace, nullptr, &*result) ? 0 : 1;
}

int Workflow(int argc, char** argv, int threads,
             const std::string& metrics_out, bool trace,
             const std::string& state_dir, bool resume, bool incremental) {
  if (argc < 3) return Usage();
  StatusOr<ClusterSnapshot> snapshot = LoadSnapshotFromFile(argv[2]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  WorkflowOptions options;
  options.rasa.num_threads = threads;
  options.cycles = argc > 3 ? std::atoi(argv[3]) : 6;
  const double fail_prob = argc > 4 ? std::atof(argv[4]) : 0.0;
  const long cordon_after = argc > 5 ? std::atol(argv[5]) : -1;
  options.seed = argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 99;
  options.inject_faults = fail_prob > 0.0 || cordon_after >= 0;
  options.faults.command_failure_probability = fail_prob;
  options.faults.cordon_after_commands = cordon_after;
  options.faults.seed = options.seed + 1;
  options.state_dir = state_dir;
  options.resume = resume;
  options.incremental = incremental;
  // Per-cycle measurement noise re-randomizes every affinity weight, which
  // the snapshot differ reports as full drift; incremental mode only pays
  // off with exact measurement (see WorkflowOptions::incremental).
  if (incremental) options.measurement_noise = 0.0;

  // The simulated cluster cannot be queried after a crash, so a resumed run
  // reconstructs the placement a restarted controller would observe from
  // the durable state (checkpoint + committed journal batches).
  Placement initial = snapshot->original_placement;
  if (resume) {
    if (state_dir.empty()) {
      std::fprintf(stderr, "workflow: --resume requires --state-dir\n");
      return 2;
    }
    StatusOr<RecoveryAnalysis> analysis = AnalyzeWorkflowState(state_dir);
    if (!analysis.ok()) {
      std::fprintf(stderr, "workflow: recovery analysis failed: %s\n",
                   analysis.status().ToString().c_str());
      return 1;
    }
    StatusOr<Placement> observed = ReconstructObservedPlacement(*analysis);
    if (!observed.ok()) {
      std::fprintf(stderr, "workflow: cannot reconstruct placement: %s\n",
                   observed.status().ToString().c_str());
      return 1;
    }
    initial = std::move(observed).value();
  }

  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot->cluster, initial,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  if (!report.ok()) {
    std::fprintf(stderr, "workflow: %s\n", report.status().ToString().c_str());
    return 1;
  }
  if (report->resumed_cycle >= 0) {
    const RecoveryStats& rec = report->recovery;
    std::printf(
        "recovery: resumed at cycle %d%s%s; commands %d applied pre-crash, "
        "%d not applied, %d torn; rolled forward %d commands / %d batches / "
        "%d drift moves; %d phases abandoned; %d cycles completed from "
        "journal\n",
        report->resumed_cycle,
        rec.used_previous_checkpoint ? " (previous checkpoint)" : "",
        rec.journal_torn_tail ? " (journal tail torn)" : "",
        rec.commands_applied_pre_crash, rec.commands_not_applied,
        rec.commands_torn, rec.commands_rolled_forward,
        rec.batches_rolled_forward, rec.drift_moves_rolled_forward,
        rec.phases_abandoned, rec.cycles_completed_from_journal);
  }
  // A resumed run's report covers cycles resumed_cycle..; print absolute
  // cycle indices so consecutive runs line up.
  const size_t first_cycle =
      report->resumed_cycle > 0 ? static_cast<size_t>(report->resumed_cycle)
                                : 0;
  for (size_t c = 0; c < report->cycles.size(); ++c) {
    const CycleReport& cr = report->cycles[c];
    std::string inc_tag;
    if (cr.incremental) {
      inc_tag = " [reused " + std::to_string(cr.reused_subproblems) + "/" +
                std::to_string(cr.reused_subproblems + cr.dirty_subproblems) +
                "]";
    } else if (!cr.incremental_reason.empty()) {
      inc_tag = " [" + cr.incremental_reason + "]";
    }
    std::printf(
        "cycle %2zu: affinity %.4f -> %.4f%s%s%s, %d moved, %d batches, "
        "%d cmd failures, %d retries, %d replans (%.2fs)\n",
        first_cycle + c, cr.affinity_before, cr.affinity_after,
        cr.executed ? (cr.reached_target ? " [executed]" : " [partial]")
                    : (cr.rolled_back ? " [rolled back]" : " [dry-run]"),
        cr.solver_failed
            ? " [solver failed]"
            : (cr.recovered ? " [recovered]" : ""),
        inc_tag.c_str(), cr.moved_containers, cr.migration_batches,
        cr.commands_failed, cr.command_retries, cr.replans, cr.seconds);
  }
  std::printf(
      "totals: %d executions (%d partial), %d dry-runs, %d rollbacks, "
      "%d solver failures\n",
      report->executions, report->partial_executions, report->dry_runs,
      report->rollbacks, report->solver_failures);
  std::printf(
      "chaos:  %d command failures, %d retries, %d replans, "
      "%d SLA violations, %d feasibility violations\n",
      report->commands_failed, report->command_retries, report->replans,
      report->sla_violations, report->feasibility_violations);
  std::printf("final gained affinity: %.4f (feasible: %s)\n",
              GainedAffinity(*snapshot->cluster, report->final_placement),
              report->final_placement.CheckFeasible(true).ok() ? "yes" : "no");
  if (!EmitObservability(metrics_out, trace, &*report)) return 1;
  return report->sla_violations + report->feasibility_violations == 0 ? 0 : 3;
}

// Inspects a durable state directory without resuming anything.
int Recover(int argc, char** argv) {
  if (argc < 3) return Usage();
  StatusOr<std::string> inspection = FormatRecoveryInspection(argv[2]);
  if (!inspection.ok()) {
    std::fprintf(stderr, "recover: %s\n",
                 inspection.status().ToString().c_str());
    return 1;
  }
  std::fputs(inspection->c_str(), stdout);
  return 0;
}

// Runs the workflow with noise-free measurement and prints each cycle's
// explain report (the human-readable form of the "report" JSON section).
int Explain(int argc, char** argv, int threads,
            const std::string& metrics_out, bool trace) {
  if (argc < 3) return Usage();
  StatusOr<ClusterSnapshot> snapshot = LoadSnapshotFromFile(argv[2]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  WorkflowOptions options;
  options.rasa.num_threads = threads;
  options.cycles = argc > 3 ? std::atoi(argv[3]) : 1;
  options.rasa.timeout_seconds = argc > 4 ? std::atof(argv[4]) : 2.0;
  // Explain the real measured weights: reports should attribute the
  // pipeline, not the measurement noise.
  options.measurement_noise = 0.0;

  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot->cluster, snapshot->original_placement,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  if (!report.ok()) {
    std::fprintf(stderr, "explain: %s\n", report.status().ToString().c_str());
    return 1;
  }
  for (size_t c = 0; c < report->cycles.size(); ++c) {
    const CycleReport& cr = report->cycles[c];
    std::printf("=== cycle %zu: affinity %.4f -> %.4f%s ===\n", c,
                cr.affinity_before, cr.affinity_after,
                cr.executed ? (cr.reached_target ? " [executed]" : " [partial]")
                            : (cr.rolled_back ? " [rolled back]"
                                              : " [dry-run]"));
    if (cr.executed) {
      std::printf("migration truncation: %.6f (predicted %.4f, achieved "
                  "%.4f)\n",
                  cr.migration_truncation, cr.predicted_affinity,
                  cr.affinity_after);
    }
    if (cr.solver_failed) {
      std::printf("optimizer failed this cycle; no explain report\n");
      continue;
    }
    std::fputs(FormatExplainReport(cr.explain).c_str(), stdout);
  }
  return EmitObservability(metrics_out, trace, &*report, nullptr, true) ? 0
                                                                        : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = ExtractThreads(argc, argv);
  const std::string metrics_out =
      ExtractStringFlag(argc, argv, "--metrics-out");
  const bool trace = ExtractBoolFlag(argc, argv, "--trace");
  const std::string state_dir = ExtractStringFlag(argc, argv, "--state-dir");
  const bool resume = ExtractBoolFlag(argc, argv, "--resume");
  const bool incremental = ExtractBoolFlag(argc, argv, "--incremental");
  if (trace) rasa::Tracer::Default().Enable(true);
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "generate") == 0) return Generate(argc, argv);
  if (std::strcmp(argv[1], "stats") == 0) return Stats(argc, argv);
  if (std::strcmp(argv[1], "optimize") == 0) {
    return Optimize(argc, argv, threads, metrics_out, trace);
  }
  if (std::strcmp(argv[1], "workflow") == 0) {
    return Workflow(argc, argv, threads, metrics_out, trace, state_dir,
                    resume, incremental);
  }
  if (std::strcmp(argv[1], "explain") == 0) {
    return Explain(argc, argv, threads, metrics_out, trace);
  }
  if (std::strcmp(argv[1], "recover") == 0) return Recover(argc, argv);
  return Usage();
}
