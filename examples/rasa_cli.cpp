// rasa_cli — command-line front end for the library.
//
//   rasa_cli generate <M1|M2|M3|M4> <scale> <out.snapshot>
//       Generate a synthetic cluster snapshot and write it to disk.
//   rasa_cli stats <in.snapshot>
//       Print the cluster's scale, affinity structure, and current
//       gained affinity.
//   rasa_cli optimize <in.snapshot> [timeout_s] [out.snapshot]
//       Run the RASA algorithm on the snapshot; print the improvement and
//       the migration plan summary; optionally write the optimized
//       snapshot back to disk.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cluster/serialization.h"
#include "core/objective.h"
#include "core/rasa.h"
#include "graph/powerlaw_fit.h"

namespace {

using namespace rasa;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rasa_cli generate <M1|M2|M3|M4> <scale> <out.snapshot>\n"
               "  rasa_cli stats <in.snapshot>\n"
               "  rasa_cli optimize <in.snapshot> [timeout_s] [out.snapshot]\n");
  return 2;
}

int Generate(int argc, char** argv) {
  if (argc < 5) return Usage();
  const std::string preset = argv[2];
  const double scale = std::atof(argv[3]);
  ClusterSpec spec;
  if (preset == "M1") {
    spec = M1Spec(scale);
  } else if (preset == "M2") {
    spec = M2Spec(scale);
  } else if (preset == "M3") {
    spec = M3Spec(scale);
  } else if (preset == "M4") {
    spec = M4Spec(scale);
  } else {
    return Usage();
  }
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  const Status saved = SaveSnapshotToFile(*snapshot, argv[4]);
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d services, %d containers, %d machines\n", argv[4],
              snapshot->cluster->num_services(),
              snapshot->cluster->num_containers(),
              snapshot->cluster->num_machines());
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 3) return Usage();
  StatusOr<ClusterSnapshot> snapshot = LoadSnapshotFromFile(argv[2]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  const Cluster& cluster = *snapshot->cluster;
  std::printf("%s: %d services, %d containers, %d machines, %d resources\n",
              snapshot->name.c_str(), cluster.num_services(),
              cluster.num_containers(), cluster.num_machines(),
              cluster.num_resources());
  std::printf("affinity: %d edges, total weight %.4f\n",
              cluster.affinity().num_edges(), cluster.affinity().TotalWeight());
  const int top = std::max(1, cluster.num_services() / 10);
  std::printf("top-10%% services hold %.1f%% of total affinity\n",
              100.0 * TopKAffinityShare(cluster.affinity(), top));
  std::printf("anti-affinity rules: %zu\n", cluster.anti_affinity().size());
  std::printf("current gained affinity: %.4f\n",
              GainedAffinity(cluster, snapshot->original_placement));
  std::printf("placement feasible (incl. SLA): %s\n",
              snapshot->original_placement.CheckFeasible(true).ok() ? "yes"
                                                                    : "no");
  return 0;
}

int Optimize(int argc, char** argv) {
  if (argc < 3) return Usage();
  StatusOr<ClusterSnapshot> snapshot = LoadSnapshotFromFile(argv[2]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load: %s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  RasaOptions options;
  options.timeout_seconds = argc > 3 ? std::atof(argv[3]) : 2.0;
  RasaOptimizer optimizer(options,
                          AlgorithmSelector(SelectorPolicy::kHeuristic));
  StatusOr<RasaResult> result =
      optimizer.Optimize(*snapshot->cluster, snapshot->original_placement);
  if (!result.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("gained affinity: %.4f -> %.4f (%.2fx) in %.2fs\n",
              result->original_gained_affinity, result->new_gained_affinity,
              result->new_gained_affinity /
                  std::max(1e-9, result->original_gained_affinity),
              result->elapsed_seconds);
  std::printf("moved containers: %d / %d\n", result->moved_containers,
              snapshot->cluster->num_containers());
  if (result->should_execute) {
    std::printf("migration plan: %s\n", result->migration.Summary().c_str());
  } else {
    std::printf("dry-run (improvement below threshold)\n");
  }
  if (argc > 4) {
    ClusterSnapshot optimized{snapshot->name + "-optimized",
                              snapshot->cluster, result->new_placement};
    const Status saved = SaveSnapshotToFile(optimized, argv[4]);
    if (!saved.ok()) {
      std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote optimized snapshot to %s\n", argv[4]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "generate") == 0) return Generate(argc, argv);
  if (std::strcmp(argv[1], "stats") == 0) return Stats(argc, argv);
  if (std::strcmp(argv[1], "optimize") == 0) return Optimize(argc, argv);
  return Usage();
}
