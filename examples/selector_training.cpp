// Algorithm-selection training (§IV-D): samples subproblems from four
// training clusters, labels each by racing column generation against the
// MIP under a time limit, trains the GCN graph classifier and the MLP
// baseline, and reports their accuracy against the simple heuristic.
//
// Build & run:  ./build/examples/selector_training [num_samples]
//                 [--selector-cache PREFIX]
//
// Trained weights land at `<prefix>.gcn` / `<prefix>.mlp`; without the
// flag the prefix resolves via RASA_SELECTOR_CACHE or to
// `.rasa_cache/rasa_selector_cache` under the working directory, keeping
// artifacts out of the source tree.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/selector_trainer.h"

int main(int argc, char** argv) {
  using namespace rasa;

  std::string cache_flag;
  int num_samples = 80;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selector-cache") == 0 && i + 1 < argc) {
      cache_flag = argv[++i];
    } else {
      num_samples = std::atoi(argv[i]);
    }
  }

  SelectorTrainingOptions options;
  options.num_samples = num_samples;
  options.label_timeout_seconds = 0.2;
  options.cluster_scale = 24.0;
  options.epochs = 80;

  std::printf("labeling %d subproblems from clusters T1-T4 "
              "(CG vs MIP, %.1fs each)...\n",
              options.num_samples, options.label_timeout_seconds);
  SelectorDataset dataset = GenerateSelectorDataset(options);
  std::printf("dataset: %zu samples, %d labeled CG, %d labeled MIP\n\n",
              dataset.samples.size(), dataset.cg_labels, dataset.mip_labels);

  TrainedSelectors trained = TrainSelectors(dataset, options);
  std::printf("GCN train accuracy: %.1f%%\n",
              100.0 * trained.gcn_train_accuracy);
  std::printf("MLP train accuracy: %.1f%%\n",
              100.0 * trained.mlp_train_accuracy);

  // Majority-class baseline for context.
  const double majority =
      static_cast<double>(std::max(dataset.cg_labels, dataset.mip_labels)) /
      std::max<size_t>(1, dataset.samples.size());
  std::printf("majority-class baseline: %.1f%%\n", 100.0 * majority);

  // Persist the models for the benches / production use.
  const std::string prefix = ResolveSelectorCachePrefix(cache_flag);
  const Status s1 = trained.gcn.SaveToFile(prefix + ".gcn");
  const Status s2 = trained.mlp.SaveToFile(prefix + ".mlp");
  std::printf("\nsaved selectors to %s.{gcn,mlp}: %s / %s\n", prefix.c_str(),
              s1.ToString().c_str(), s2.ToString().c_str());
  return 0;
}
