// Quickstart: generate a synthetic microservice cluster, optimize its
// container placement for service affinity with the RASA algorithm, and
// print the before/after gained affinity plus the executable migration plan.
//
// Build & run:  ./build/examples/quickstart [scale]

#include <cstdio>
#include <cstdlib>

#include "cluster/generator.h"
#include "common/strings.h"
#include "core/objective.h"
#include "core/rasa.h"

int main(int argc, char** argv) {
  using namespace rasa;

  const double scale = argc > 1 ? std::atof(argv[1]) : 32.0;

  // 1) Generate a cluster shaped like the paper's M1 trace and place it
  //    with the affinity-blind production scheduler (ORIGINAL).
  ClusterSpec spec = M1Spec(scale);
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  const Cluster& cluster = *snapshot->cluster;
  std::printf("cluster %s: %d services, %d containers, %d machines\n",
              snapshot->name.c_str(), cluster.num_services(),
              cluster.num_containers(), cluster.num_machines());
  std::printf("original gained affinity: %.4f (of 1.0 total)\n",
              GainedAffinity(cluster, snapshot->original_placement));

  // 2) Run the RASA algorithm: multi-stage partitioning, per-subproblem
  //    algorithm selection (heuristic policy for the quickstart; see the
  //    selector_training example for the GCN), migration path.
  RasaOptions options;
  options.timeout_seconds = 2.0;
  RasaOptimizer optimizer(options,
                          AlgorithmSelector(SelectorPolicy::kHeuristic));
  StatusOr<RasaResult> result =
      optimizer.Optimize(cluster, snapshot->original_placement);
  if (!result.ok()) {
    std::fprintf(stderr, "RASA failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("new gained affinity:      %.4f  (%.1fx)\n",
              result->new_gained_affinity,
              result->new_gained_affinity /
                  std::max(1e-9, result->original_gained_affinity));
  std::printf("partitioning: %d subproblems, %d crucial / %d trivial "
              "services, master ratio %.3f\n",
              result->partition_stats.num_subproblems,
              result->partition_stats.num_crucial_services,
              result->partition_stats.num_trivial_services,
              result->partition_stats.master_ratio);
  for (const SubproblemReport& sp : result->subproblems) {
    std::printf("  subproblem: %2d services %2d machines  affinity %.4f  "
                "-> %s  gained %.4f  (%.2fs)%s\n",
                sp.num_services, sp.num_machines, sp.internal_affinity,
                PoolAlgorithmToString(sp.algorithm), sp.gained_affinity,
                sp.seconds, sp.failed ? "  [FAILED]" : "");
  }
  std::printf("moved containers: %d of %d (%.1f%%)\n",
              result->moved_containers, cluster.num_containers(),
              100.0 * result->moved_containers / cluster.num_containers());
  if (result->should_execute) {
    std::printf("migration plan: %s\n", result->migration.Summary().c_str());
  } else {
    std::printf("dry-run (improvement below threshold)\n");
  }
  std::printf("total time: %.2fs\n", result->elapsed_seconds);
  return 0;
}
