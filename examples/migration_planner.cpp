// Migration-path planning (§IV-E): optimize a cluster, compute the batched
// delete/create plan that transitions the live placement to the optimized
// one, replay it while tracking per-service availability, and verify the
// SLA floor holds after every batch.
//
// Build & run:  ./build/examples/migration_planner [scale]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "cluster/generator.h"
#include "core/migration.h"
#include "core/rasa.h"

int main(int argc, char** argv) {
  using namespace rasa;

  const double scale = argc > 1 ? std::atof(argv[1]) : 32.0;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M4Spec(scale));
  if (!snapshot.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  const Cluster& cluster = *snapshot->cluster;

  RasaOptions options;
  options.timeout_seconds = 2.0;
  RasaOptimizer optimizer(options,
                          AlgorithmSelector(SelectorPolicy::kHeuristic));
  StatusOr<RasaResult> result =
      optimizer.Optimize(cluster, snapshot->original_placement);
  if (!result.ok() || !result->should_execute) {
    std::fprintf(stderr, "no migration to plan\n");
    return 1;
  }

  const MigrationPlan& plan = result->migration;
  std::printf("optimized %s: gained affinity %.4f -> %.4f\n",
              snapshot->name.c_str(), result->original_gained_affinity,
              result->new_gained_affinity);
  std::printf("migration plan: %s\n\n", plan.Summary().c_str());

  // Replay the plan batch by batch, tracking worst-case availability.
  Placement current = snapshot->original_placement;
  std::printf("%6s %8s %8s %22s\n", "batch", "deletes", "creates",
              "worst availability");
  for (size_t b = 0; b < plan.batches.size(); ++b) {
    int deletes = 0, creates = 0;
    for (const MigrationCommand& cmd : plan.batches[b]) {
      if (cmd.type == MigrationCommandType::kDelete) {
        ++deletes;
        if (!current.Remove(cmd.machine, cmd.service).ok()) {
          std::fprintf(stderr, "batch %zu: bad delete!\n", b);
          return 1;
        }
      } else {
        ++creates;
        if (!current.CanPlace(cmd.machine, cmd.service)) {
          std::fprintf(stderr, "batch %zu: infeasible create!\n", b);
          return 1;
        }
        current.Add(cmd.machine, cmd.service);
      }
    }
    double worst = 1.0;
    int worst_service = -1;
    for (int s = 0; s < cluster.num_services(); ++s) {
      const int d = cluster.service(s).demand;
      if (d == 0) continue;
      const double alive = static_cast<double>(current.TotalOf(s)) / d;
      if (alive < worst) {
        worst = alive;
        worst_service = s;
      }
    }
    if (b < 6 || b + 3 >= plan.batches.size()) {
      std::printf("%6zu %8d %8d        %5.1f%% (%s)\n", b + 1, deletes,
                  creates, 100.0 * worst,
                  worst_service >= 0
                      ? cluster.service(worst_service).name.c_str()
                      : "-");
    } else if (b == 6) {
      std::printf("   ...\n");
    }
  }

  const Status valid = ValidateMigrationPlan(
      cluster, snapshot->original_placement, result->new_placement, plan);
  std::printf("\nfull validation: %s\n", valid.ToString().c_str());
  return valid.ok() ? 0 : 1;
}
