// Continuous cluster optimization (§III): simulates the periodic CronJob
// that collects the cluster state, runs the RASA algorithm, applies the
// migration plan (or dry-runs), and copes with cluster drift between
// cycles. Prints one row per cycle.
//
// Build & run:  ./build/examples/continuous_optimization [cycles] [scale]

#include <cstdio>
#include <cstdlib>

#include "cluster/generator.h"
#include "core/objective.h"
#include "sim/workflow.h"

int main(int argc, char** argv) {
  using namespace rasa;

  const int cycles = argc > 1 ? std::atoi(argv[1]) : 6;
  const double scale = argc > 2 ? std::atof(argv[2]) : 32.0;

  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(scale));
  if (!snapshot.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }

  WorkflowOptions options;
  options.cycles = cycles;
  options.drift_fraction = 0.05;     // app updates move ~5% of containers
  options.measurement_noise = 0.05;  // the collector measures traffic ±5%
  options.rasa.timeout_seconds = 1.5;

  std::printf("running %d CronJob cycles on %s (%d services, %d containers, "
              "%d machines)\n\n",
              cycles, snapshot->name.c_str(),
              snapshot->cluster->num_services(),
              snapshot->cluster->num_containers(),
              snapshot->cluster->num_machines());
  std::printf("%5s %10s %10s %10s %8s %7s %8s\n", "cycle", "before", "after",
              "predicted", "action", "moved", "batches");

  StatusOr<WorkflowReport> report =
      RunWorkflow(*snapshot->cluster, snapshot->original_placement,
                  AlgorithmSelector(SelectorPolicy::kHeuristic), options);
  if (!report.ok()) {
    std::fprintf(stderr, "workflow failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < report->cycles.size(); ++i) {
    const CycleReport& c = report->cycles[i];
    std::printf("%5zu %10.4f %10.4f %10.4f %8s %7d %8d\n", i + 1,
                c.affinity_before, c.affinity_after, c.predicted_affinity,
                c.executed ? "execute" : (c.rolled_back ? "rollback" : "dry-run"),
                c.moved_containers, c.migration_batches);
  }
  std::printf("\nexecutions=%d dry-runs=%d rollbacks=%d\n",
              report->executions, report->dry_runs, report->rollbacks);
  std::printf("final gained affinity: %.4f (placement feasible: %s)\n",
              GainedAffinity(*snapshot->cluster, report->final_placement),
              report->final_placement.CheckFeasible(true).ok() ? "yes" : "NO");
  return 0;
}
