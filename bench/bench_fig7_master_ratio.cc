// Fig. 7: Under the time-out constraint, the gained affinity and the total
// affinity of master services under different master ratios, plus the
// chosen ratio alpha = 45 * ln^0.66(N) / N.
// Expected shape: master affinity approaches 1.0 quickly; gained affinity
// rises to a peak then plateaus (small clusters) or dips (large clusters,
// where the fixed time-out starves the bigger search space).

#include "bench_util.h"
#include "core/rasa.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Fig. 7 — gained affinity & master affinity vs master ratio",
              "sweep of the master-affinity partitioning ratio alpha");

  const AlgorithmSelector selector = rasa::bench::BenchSelector();
  const double ratios[] = {0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.70, 0.90};

  for (const ClusterSnapshot& snapshot : BenchClusters()) {
    const int n = snapshot.cluster->num_services();
    const double chosen = MasterRatio(n, 45.0, 0.66);
    std::printf("%s (N=%d, chosen alpha=%.3f):\n", snapshot.name.c_str(), n,
                chosen);
    std::printf("  %8s %16s %16s\n", "alpha", "master affinity",
                "gained affinity");
    auto run_at = [&](double alpha) {
      RasaOptions options;
      options.timeout_seconds = BenchTimeout();
      options.partitioning.master_ratio_override = alpha;
      options.compute_migration = false;
      RasaOptimizer optimizer(options, selector);
      StatusOr<RasaResult> result =
          optimizer.Optimize(*snapshot.cluster, snapshot.original_placement);
      RASA_CHECK(result.ok()) << result.status().ToString();
      std::printf("  %8.3f %16.4f %16.4f%s\n", alpha,
                  result->partition_stats.master_affinity,
                  result->new_gained_affinity,
                  std::abs(alpha - chosen) < 1e-9 ? "   <- chosen" : "");
    };
    for (double alpha : ratios) run_at(alpha);
    run_at(std::min(1.0, chosen));
    PrintRule();
  }
  return 0;
}
