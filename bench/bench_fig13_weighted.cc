// Fig. 13: Comparison of QPS-weighted end-to-end latency and error rate for
// all considered services in production.
// Expected shape: WITH RASA improves weighted latency by ~24% and weighted
// error rate by ~24% vs WITHOUT RASA (paper: 23.75% and 24.09%), and sits
// within a ~10% absolute gap of ONLY COLLOCATED.

#include "bench_prod_util.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Fig. 13 — weighted latency & error rate, whole cluster",
              "QPS-weighted over every affinity pair RASA considers");

  ProductionSetup setup = MakeProductionSetup();
  const ProductionSimReport& report = setup.report;

  std::printf("weighted end-to-end latency (normalized):\n");
  PrintSeries("WITHOUT RASA", report.weighted_latency_without);
  PrintSeries("WITH RASA", report.weighted_latency_with);
  PrintSeries("ONLY COLLOC.", report.weighted_latency_collocated);
  PrintRule();
  std::printf("weighted request error rate (normalized):\n");
  PrintSeries("WITHOUT RASA", report.weighted_error_without);
  PrintSeries("WITH RASA", report.weighted_error_with);
  PrintSeries("ONLY COLLOC.", report.weighted_error_collocated);
  PrintRule();
  std::printf("weighted latency improvement:    %.2f%%  (paper: 23.75%%)\n",
              100.0 * report.latency_improvement);
  std::printf("weighted error-rate improvement: %.2f%%  (paper: 24.09%%)\n",
              100.0 * report.error_improvement);
  std::printf("mean absolute gap WITH-RASA vs ONLY-COLLOCATED: latency %.3f, "
              "errors %.3f  (paper: <10%% for both)\n",
              report.latency_gap_to_collocated,
              report.error_gap_to_collocated);
  return 0;
}
