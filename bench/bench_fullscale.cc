// Full-scale bench: M4 at scale factor 1 — the repo's first perf
// trajectory point at the paper's actual Table II size (10 682 services /
// 113 261 containers / 4 365 machines). Unlike the other benches this one
// DEFAULTS to scale 1 (RASA_BENCH_SCALE still overrides it; the ctest
// smoke fixture runs at 96), generates + partitions + optimizes M4 through
// the CSR affinity view and arena-backed solvers, and asserts a peak-RSS
// budget on the whole process.
//
// The POP replica-split fallback is enabled (pop.max_services below the
// partitioner ceiling) so oversized subproblems exercise the split; each
// phase row reports peak RSS so far, and the optimize row reports the POP
// quality loss measured against the optimality-gap certificate (whose
// terms stay at the trivial bound with source "pop").
//
// Environment knobs (on top of the usual bench_util ones):
//   RASA_BENCH_SCALE         downscale divisor, DEFAULT 1 here (paper size)
//   RASA_BENCH_TIMEOUT       solver budget seconds, default 60 here (the
//                            paper's one-minute SLO at full scale)
//   RASA_BENCH_RSS_MB        peak-RSS budget in MiB (default 2048)
//   RASA_BENCH_NO_THRESHOLD  skip the RSS and POP-exercised asserts (the
//                            tiny smoke run keeps only the completion and
//                            certificate-soundness checks)
//
// Machine-readable output: BENCH_fullscale.json (one row per phase).

#include <sys/resource.h>

#include <thread>

#include "bench_util.h"
#include "common/timer.h"
#include "core/partitioning.h"
#include "core/rasa.h"

namespace {

using namespace rasa;
using namespace rasa::bench;

// Peak resident set of this process so far, in MiB (ru_maxrss is KiB on
// Linux). Monotone over the process lifetime, so each phase row reports
// the high-water mark up to that phase.
double PeakRssMb() {
  struct rusage usage;
  RASA_CHECK(getrusage(RUSAGE_SELF, &usage) == 0);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

double FullscaleScale() {
  const char* env = std::getenv("RASA_BENCH_SCALE");
  const double v = env != nullptr ? std::atof(env) : 0.0;
  return v > 0.0 ? v : 1.0;
}

double FullscaleTimeout() {
  const char* env = std::getenv("RASA_BENCH_TIMEOUT");
  const double v = env != nullptr ? std::atof(env) : 0.0;
  return v > 0.0 ? v : 60.0;
}

double RssBudgetMb() {
  const char* env = std::getenv("RASA_BENCH_RSS_MB");
  const double v = env != nullptr ? std::atof(env) : 0.0;
  return v > 0.0 ? v : 2048.0;
}

}  // namespace

int main() {
  const double scale = FullscaleScale();
  const double timeout = FullscaleTimeout();
  const double rss_budget = RssBudgetMb();
  const bool thresholds = std::getenv("RASA_BENCH_NO_THRESHOLD") == nullptr;

  std::printf("==================================================================\n");
  std::printf("Full scale — M4 at scale factor %.0f (Table II row: 10682 "
              "services / 113261 containers / 4365 machines at factor 1)\n",
              scale);
  std::printf("timeout=%.2fs  rss_budget=%.0f MiB  hardware threads: %u\n",
              timeout, rss_budget, std::thread::hardware_concurrency());
  std::printf("==================================================================\n");

  BenchJsonWriter json("fullscale");

  // --- Phase 1: generate ---------------------------------------------------
  Stopwatch gen_timer;
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M4Spec(scale));
  RASA_CHECK(snapshot.ok()) << snapshot.status().ToString();
  const double gen_seconds = gen_timer.ElapsedSeconds();
  const Cluster& cluster = *snapshot->cluster;
  std::printf("generate: %d services, %d containers, %d machines in %.2fs "
              "(peak RSS %.0f MiB)\n",
              cluster.num_services(), cluster.num_containers(),
              cluster.num_machines(), gen_seconds, PeakRssMb());
  json.BeginRow()
      .Field("phase", "generate")
      .Field("scale", static_cast<int>(scale))
      .Field("services", cluster.num_services())
      .Field("containers", cluster.num_containers())
      .Field("machines", cluster.num_machines())
      .Field("seconds", gen_seconds)
      .Field("peak_rss_mb", PeakRssMb());
  if (thresholds && scale == 1.0) {
    // Factor 1 must reproduce the Table II row exactly (generator gates).
    RASA_CHECK(cluster.num_services() == 10682);
    RASA_CHECK(cluster.num_containers() == 113261);
    RASA_CHECK(cluster.num_machines() == 4365);
  }

  // --- Phase 2: partition (reported separately, then redone inside
  // Optimize; the duplicate costs a few seconds and keeps the phase
  // attribution honest) ----------------------------------------------------
  PartitioningOptions part_options;
  Stopwatch part_timer;
  PartitionResult partition = PartitionServices(
      cluster, snapshot->original_placement, part_options);
  const double part_seconds = part_timer.ElapsedSeconds();
  int largest_subproblem = 0;
  for (const Subproblem& sp : partition.subproblems) {
    largest_subproblem = std::max(largest_subproblem,
                                  static_cast<int>(sp.services.size()));
  }
  std::printf("partition: %d subproblems (largest %d services, %d crucial / "
              "%d trivial services) in %.2fs (peak RSS %.0f MiB)\n",
              partition.stats.num_subproblems, largest_subproblem,
              partition.stats.num_crucial_services,
              partition.stats.num_trivial_services, part_seconds,
              PeakRssMb());
  json.BeginRow()
      .Field("phase", "partition")
      .Field("scale", static_cast<int>(scale))
      .Field("subproblems", partition.stats.num_subproblems)
      .Field("largest_subproblem", largest_subproblem)
      .Field("seconds", part_seconds)
      .Field("peak_rss_mb", PeakRssMb());

  // --- Phase 3: optimize (POP enabled) -------------------------------------
  RasaOptions options;
  options.timeout_seconds = timeout;
  options.compute_migration = false;
  options.num_threads = 8;
  // Split anything the balance slack let grow past the target subproblem
  // size: at factor 1 that exercises the POP path on the heavy tail.
  options.pop.max_services = 24;
  options.pop.num_replicas = 2;
  RasaOptimizer optimizer(options,
                          AlgorithmSelector(SelectorPolicy::kHeuristic));
  Stopwatch opt_timer;
  StatusOr<RasaResult> result =
      optimizer.Optimize(cluster, snapshot->original_placement);
  const double opt_seconds = opt_timer.ElapsedSeconds();
  RASA_CHECK(result.ok()) << result.status().ToString();

  // Certificate soundness around POP: every "pop" term stays untightened
  // at the trivial bound, and the reported quality loss matches it.
  int pop_terms = 0;
  for (size_t i = 0; i < result->subproblems.size(); ++i) {
    const SubproblemReport& report = result->subproblems[i];
    const CertificateTerm& term = result->report.certificate.terms[i];
    if (!report.used_pop) continue;
    ++pop_terms;
    RASA_CHECK(term.source == "pop");
    RASA_CHECK(!term.tightened);
    RASA_CHECK(term.bound == report.internal_affinity);
  }
  RASA_CHECK(pop_terms == result->pop_splits);

  std::printf("optimize: gained affinity %.4f -> %.4f in %.2fs "
              "(%d threads, peak RSS %.0f MiB)\n",
              result->original_gained_affinity, result->new_gained_affinity,
              opt_seconds, result->num_threads_used, PeakRssMb());
  std::printf("POP: %d subproblems split; quality loss %.6f against the "
              "certificate's trivial bounds (optimality gap %.6f)\n",
              result->pop_splits, result->pop_quality_loss,
              result->report.certificate.Gap());
  json.BeginRow()
      .Field("phase", "optimize")
      .Field("scale", static_cast<int>(scale))
      .Field("threads", 8)
      .Field("seconds", opt_seconds)
      .Field("gained_affinity_before", result->original_gained_affinity)
      .Field("gained_affinity_after", result->new_gained_affinity)
      .Field("pop_splits", result->pop_splits)
      .Field("pop_quality_loss", result->pop_quality_loss)
      .Field("certificate_gap", result->report.certificate.Gap())
      .Field("peak_rss_mb", PeakRssMb());

  const double peak = PeakRssMb();
  std::printf("------------------------------------------------------------------\n");
  std::printf("peak RSS: %.0f MiB (budget %.0f MiB)%s\n", peak, rss_budget,
              thresholds ? "" : " [not asserted]");
  if (thresholds) {
    RASA_CHECK(peak < rss_budget)
        << "peak RSS " << peak << " MiB exceeds budget " << rss_budget;
    // The whole point of the bench: the POP path must actually run at
    // scale, not just exist.
    RASA_CHECK(result->pop_splits > 0)
        << "no subproblem exceeded pop.max_services; POP not exercised";
  }
  std::printf("OK\n");
  return 0;
}
