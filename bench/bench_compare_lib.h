#ifndef RASA_BENCH_BENCH_COMPARE_LIB_H_
#define RASA_BENCH_BENCH_COMPARE_LIB_H_

// Comparison of two BENCH_<name>.json result files (the flat
// array-of-objects format emitted by BenchJsonWriter). Header-only and
// dependency-free (std only) so both the bench_compare tool and its unit
// test can use it without dragging in the solver libraries.
//
// Rows are matched across the two files by their *identity*: every
// string-valued field plus the integer axis fields in kAxisKeys (e.g.
// "threads"), rendered as "key=value" and joined with "|". The remaining
// numeric fields are classified by key name into lower-is-better (timings,
// failure counts) and higher-is-better (quality) metrics; a metric that
// moved in the bad direction by more than the relative tolerance (default
// 10%) is a regression. Unclassified numeric fields are informational and
// never flagged.

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace rasa::bench {

struct BenchValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string str;
  double num = 0.0;
  bool boolean = false;
};

/// One flat JSON object, in file order (BenchJsonWriter never nests).
using BenchRow = std::vector<std::pair<std::string, BenchValue>>;

namespace compare_internal {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(std::vector<BenchRow>* rows) {
    SkipSpace();
    if (!Consume('[')) return Fail("expected '[' at top level");
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      BenchRow row;
      if (!ParseObject(&row)) return false;
      rows->push_back(std::move(row));
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' or ']' after object");
      SkipSpace();
    }
  }

 private:
  bool ParseObject(BenchRow* row) {
    if (!Consume('{')) return Fail("expected '{'");
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':' after key");
      SkipSpace();
      BenchValue value;
      if (!ParseValue(&value)) return false;
      row->emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
      SkipSpace();
    }
  }

  bool ParseValue(BenchValue* value) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '"') {
      value->kind = BenchValue::Kind::kString;
      return ParseString(&value->str);
    }
    if (c == 't' || c == 'f') {
      value->kind = BenchValue::Kind::kBool;
      value->boolean = c == 't';
      return ConsumeWord(c == 't' ? "true" : "false");
    }
    if (c == 'n') {
      value->kind = BenchValue::Kind::kNull;
      return ConsumeWord("null");
    }
    // Number: strtod accepts exactly the %.17g forms BenchJsonWriter emits
    // (including "inf"/"nan" never appearing — those are written as null).
    char* end = nullptr;
    const double v = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return Fail("expected a JSON value");
    value->kind = BenchValue::Kind::kNumber;
    value->num = v;
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad hex digit in \\u escape");
          }
          AppendUtf8(cp, out);
          break;
        }
        default: return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  bool ConsumeWord(const char* word) {
    const size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return Fail("bad literal");
    pos_ += n;
    return true;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const char* message) {
    if (error_ != nullptr) {
      *error_ = std::string(message) + " (at byte " + std::to_string(pos_) +
                " of " + std::to_string(text_.size()) + ")";
    }
    return false;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

inline bool KeyContains(const std::string& key, const char* needle) {
  return key.find(needle) != std::string::npos;
}

}  // namespace compare_internal

/// Parses one BENCH_<name>.json payload. Returns false and sets `error`
/// (when non-null) on malformed input.
inline bool ParseBenchJson(const std::string& text, std::vector<BenchRow>* rows,
                           std::string* error = nullptr) {
  compare_internal::Parser parser(text, error);
  return parser.Parse(rows);
}

/// Integer-valued fields that are part of a row's identity rather than a
/// measurement (the x-axis of the bench, not its y-axis).
inline bool IsAxisKey(const std::string& key) {
  static const char* const kAxisKeys[] = {
      "threads", "cycle",   "cycles", "scale", "size",
      "machines", "services", "containers", "seed", "index", "rep",
  };
  for (const char* axis : kAxisKeys) {
    if (key == axis) return true;
  }
  return false;
}

/// A larger value is a regression: wall times and failure tallies.
inline bool IsLowerBetter(const std::string& key) {
  using compare_internal::KeyContains;
  return KeyContains(key, "seconds") || KeyContains(key, "time") ||
         KeyContains(key, "latency") || KeyContains(key, "truncation") ||
         KeyContains(key, "failed") || KeyContains(key, "violations") ||
         KeyContains(key, "retries") || KeyContains(key, "replans") ||
         KeyContains(key, "unplaced") || KeyContains(key, "gap");
}

/// A smaller value is a regression: quality and throughput measures.
inline bool IsHigherBetter(const std::string& key) {
  using compare_internal::KeyContains;
  return KeyContains(key, "speedup") || KeyContains(key, "affinity") ||
         KeyContains(key, "ratio") || KeyContains(key, "throughput") ||
         KeyContains(key, "improvement");
}

/// The match key of a row: string fields plus integer axis fields, in file
/// order. Two rows with the same identity are compared metric by metric.
inline std::string RowIdentity(const BenchRow& row) {
  std::string id;
  for (const auto& [key, value] : row) {
    const bool is_string = value.kind == BenchValue::Kind::kString;
    const bool is_axis =
        value.kind == BenchValue::Kind::kNumber && IsAxisKey(key);
    if (!is_string && !is_axis) continue;
    if (!id.empty()) id += "|";
    id += key + "=";
    if (is_string) {
      id += value.str;
    } else {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%g", value.num);
      id += buffer;
    }
  }
  return id.empty() ? "<row>" : id;
}

struct CompareOptions {
  /// Relative move in the bad direction above which a metric regresses.
  double tolerance = 0.10;
  /// Absolute moves at or below this are never regressions (guards the
  /// relative test against zero baselines and float noise).
  double absolute_floor = 1e-9;
};

struct MetricDelta {
  std::string row;           // RowIdentity of the matched rows
  std::string key;           // metric field name
  double baseline = 0.0;
  double candidate = 0.0;
  /// Signed relative move in the *bad* direction (positive == worse), so a
  /// 12% slowdown and a 12% quality drop both report +0.12.
  double relative_worse = 0.0;
  bool regression = false;
};

struct CompareReport {
  std::vector<MetricDelta> deltas;  // every classified metric compared
  std::vector<std::string> missing_in_candidate;  // identities dropped
  std::vector<std::string> missing_in_baseline;   // identities added
  int regressions = 0;
};

/// Compares candidate against baseline row by row. Rows present in only one
/// file are reported but are not regressions (bench coverage may evolve);
/// only classified metrics that moved in the bad direction past the
/// tolerance count.
inline CompareReport CompareBench(const std::vector<BenchRow>& baseline,
                                  const std::vector<BenchRow>& candidate,
                                  const CompareOptions& options = {}) {
  CompareReport report;
  std::map<std::string, const BenchRow*> candidate_by_id;
  for (const BenchRow& row : candidate) {
    candidate_by_id.emplace(RowIdentity(row), &row);  // first wins
  }
  std::map<std::string, bool> candidate_matched;
  for (const auto& [id, row] : candidate_by_id) candidate_matched[id] = false;

  for (const BenchRow& base_row : baseline) {
    const std::string id = RowIdentity(base_row);
    auto it = candidate_by_id.find(id);
    if (it == candidate_by_id.end()) {
      report.missing_in_candidate.push_back(id);
      continue;
    }
    candidate_matched[id] = true;
    const BenchRow& cand_row = *it->second;
    for (const auto& [key, base_value] : base_row) {
      if (base_value.kind != BenchValue::Kind::kNumber || IsAxisKey(key)) {
        continue;
      }
      const bool lower_better = IsLowerBetter(key);
      const bool higher_better = !lower_better && IsHigherBetter(key);
      if (!lower_better && !higher_better) continue;
      const BenchValue* cand_value = nullptr;
      for (const auto& [ckey, cvalue] : cand_row) {
        if (ckey == key && cvalue.kind == BenchValue::Kind::kNumber) {
          cand_value = &cvalue;
          break;
        }
      }
      if (cand_value == nullptr) continue;
      MetricDelta delta;
      delta.row = id;
      delta.key = key;
      delta.baseline = base_value.num;
      delta.candidate = cand_value->num;
      const double worse_by = lower_better
                                  ? cand_value->num - base_value.num
                                  : base_value.num - cand_value->num;
      const double denom = std::max(std::abs(base_value.num),
                                    options.absolute_floor);
      delta.relative_worse = worse_by / denom;
      delta.regression = delta.relative_worse > options.tolerance &&
                         worse_by > options.absolute_floor;
      if (delta.regression) ++report.regressions;
      report.deltas.push_back(std::move(delta));
    }
  }
  for (const auto& [id, matched] : candidate_matched) {
    if (!matched) report.missing_in_baseline.push_back(id);
  }
  return report;
}

/// Human-readable summary: one line per regression, then the tally.
inline std::string FormatCompareReport(const CompareReport& report,
                                       const CompareOptions& options = {}) {
  std::string out;
  char line[512];
  for (const MetricDelta& d : report.deltas) {
    if (!d.regression) continue;
    std::snprintf(line, sizeof(line),
                  "REGRESSION  %s  %s: %.6g -> %.6g (%.1f%% worse)\n",
                  d.row.c_str(), d.key.c_str(), d.baseline, d.candidate,
                  100.0 * d.relative_worse);
    out += line;
  }
  for (const std::string& id : report.missing_in_candidate) {
    out += "missing in candidate: " + id + "\n";
  }
  for (const std::string& id : report.missing_in_baseline) {
    out += "only in candidate:    " + id + "\n";
  }
  std::snprintf(line, sizeof(line),
                "%zu metric(s) compared, %d regression(s) beyond %.0f%%\n",
                report.deltas.size(), report.regressions,
                100.0 * options.tolerance);
  out += line;
  return out;
}

}  // namespace rasa::bench

#endif  // RASA_BENCH_BENCH_COMPARE_LIB_H_
