// Table II: Scales of Experimental Datasets.
// Prints the generated clusters' scales next to the paper's production
// numbers (ours are the paper's divided by RASA_BENCH_SCALE).

#include "bench_util.h"
#include "core/objective.h"
#include "graph/powerlaw_fit.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Table II — Scales of Experimental Datasets",
              "generated synthetic stand-ins for the ByteDance traces");

  struct PaperRow {
    const char* name;
    int services, containers, machines;
  };
  const PaperRow paper[] = {{"M1", 5904, 25640, 977},
                            {"M2", 10180, 152833, 5284},
                            {"M3", 547, 3485, 96},
                            {"M4", 10682, 113261, 4365}};

  std::printf("%-8s %10s %12s %10s   %28s\n", "Cluster", "#Service",
              "#Container", "#Machine", "(paper: svc/ctn/machine)");
  PrintRule();
  std::vector<ClusterSnapshot> clusters = BenchClusters();
  for (size_t i = 0; i < clusters.size(); ++i) {
    const ClusterScaleStats stats = ComputeScaleStats(clusters[i]);
    std::printf("%-8s %10d %12d %10d   %10d /%9d /%6d\n", stats.name.c_str(),
                stats.num_services, stats.num_containers, stats.num_machines,
                paper[i].services, paper[i].containers, paper[i].machines);
  }
  PrintRule();
  std::printf("structural checks per cluster:\n");
  for (const ClusterSnapshot& snapshot : clusters) {
    const Cluster& cluster = *snapshot.cluster;
    const int top10 = std::max(1, cluster.num_services() / 10);
    std::printf(
        "  %-3s total affinity %.3f (normalized)  top-10%%-services share "
        "%.1f%%  original gained affinity %.4f\n",
        snapshot.name.c_str(), cluster.affinity().TotalWeight(),
        100.0 * TopKAffinityShare(cluster.affinity(), top10),
        GainedAffinity(cluster, snapshot.original_placement));
  }
  return 0;
}
