// Incremental re-optimization bench (not a paper figure): steady-state
// cycle cost of the incremental Optimize path vs a cold Optimize on the fig-10-scale
// M1 instance under seeded container churn.
//
// Protocol, per drift level: both tracks start from the same optimized
// placement (the incremental track's cold start is bit-identical to the
// full solve). Each cycle relocates `drift` of all containers to random
// feasible machines — the workflow's drift policy — then re-optimizes; the
// track adopts the returned placement, and the incremental track re-bases
// its delta cache on it exactly as the control loop does.
//
// Two claims are checked:
//   1. Determinism — with a fully re-weighted input (every edge past the
//      weight tolerance) the incremental path must fall back and match the
//      plain Optimize bit for bit. Always asserted, even in smoke mode.
//   2. Speedup — at 4% drift the mean steady-state incremental cycle must
//      be >= 3x faster than the mean full-resolve cycle. Skipped under
//      RASA_BENCH_NO_THRESHOLD (smoke runs are deadline-bound, not
//      solver-bound).
//
// Machine-readable output: BENCH_incremental.json (per-cycle rows for both
// tracks plus a summary row per drift level).

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/delta.h"
#include "core/objective.h"
#include "core/rasa.h"

namespace {

using namespace rasa;
using namespace rasa::bench;

// The workflow's relocation policy (application updates between cycles):
// ~fraction of all containers move to a random feasible machine.
void Churn(const Cluster& cluster, Placement& placement, double fraction,
           Rng& rng) {
  const int moves = static_cast<int>(fraction * cluster.num_containers());
  for (int i = 0; i < moves; ++i) {
    const int s = static_cast<int>(rng.NextUint64(cluster.num_services()));
    const auto& machines = placement.MachinesOf(s);
    if (machines.empty()) continue;
    const int pick = static_cast<int>(rng.NextUint64(machines.size()));
    auto it = machines.begin();
    std::advance(it, pick);
    const int from = it->first;
    std::vector<int> feasible;
    for (int m = 0; m < cluster.num_machines(); ++m) {
      if (m != from && placement.CanPlace(m, s)) feasible.push_back(m);
    }
    if (feasible.empty()) continue;
    const int to = feasible[rng.NextUint64(feasible.size())];
    RASA_CHECK(placement.Remove(from, s).ok());
    placement.Add(to, s);
  }
}

bool Identical(const RasaResult& a, const RasaResult& b) {
  return a.new_gained_affinity == b.new_gained_affinity &&
         a.new_placement.DiffCount(b.new_placement) == 0 &&
         b.new_placement.DiffCount(a.new_placement) == 0;
}

}  // namespace

int main() {
  PrintHeader("Incremental re-optimization — delta-aware control loop",
              "steady-state incremental Optimize vs full Optimize under churn");

  const AlgorithmSelector selector(SelectorPolicy::kHeuristic);
  RasaOptions options;
  // Solver-bound, not deadline-bound: the timing comparison must measure
  // the work skipped, not a budget cap. Subproblems must be small enough to
  // *converge* inside the budget — a non-convergent MIP is elastic and
  // expands to fill whatever deadline slice it gets, which would make every
  // cycle cost exactly the budget no matter how many partitions are reused.
  options.timeout_seconds = 10.0 * BenchTimeout();
  options.partitioning.max_subproblem_services = 12;
  options.compute_migration = false;
  const RasaOptimizer optimizer(options, selector);

  ClusterSpec spec = M1Spec(BenchScale());
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  RASA_CHECK(snapshot.ok()) << snapshot.status().ToString();
  const Cluster& cluster = *snapshot->cluster;
  std::printf("%s: %d services, %d machines, %d containers\n",
              snapshot->name.c_str(), cluster.num_services(),
              cluster.num_machines(), cluster.num_containers());
  PrintRule();

  // Shared starting point: one full solve, adopted.
  StatusOr<RasaResult> warm =
      optimizer.Optimize(cluster, snapshot->original_placement);
  RASA_CHECK(warm.ok()) << warm.status().ToString();
  const Placement steady = warm->new_placement;

  // Claim 1: full-drift input => fallback, bit-identical to plain Optimize.
  {
    AffinityGraph skewed(cluster.num_services());
    int i = 0;
    for (const AffinityEdge& e : cluster.affinity().edges()) {
      skewed.AddEdge(e.u, e.v, e.weight * (1.0 + 0.2 * (++i % 5) + 0.01));
    }
    skewed.NormalizeWeights();
    const Cluster drifted(cluster.resource_names(), cluster.services(),
                          cluster.machines(), std::move(skewed),
                          cluster.anti_affinity());
    Placement rebound(drifted);
    for (int m = 0; m < drifted.num_machines(); ++m) {
      for (const auto& [s, count] : steady.ServicesOn(m)) {
        rebound.Add(m, s, count);
      }
    }
    IncrementalState state;
    StatusOr<RasaResult> prime =
        optimizer.Optimize(cluster, steady, OptimizeContext(nullptr, &state));
    RASA_CHECK(prime.ok()) << prime.status().ToString();
    StatusOr<RasaResult> full = optimizer.Optimize(drifted, rebound);
    RASA_CHECK(full.ok()) << full.status().ToString();
    StatusOr<RasaResult> inc =
        optimizer.Optimize(drifted, rebound, OptimizeContext(nullptr, &state));
    RASA_CHECK(inc.ok()) << inc.status().ToString();
    if (inc->incremental || !Identical(*full, *inc)) {
      std::fprintf(stderr,
                   "FAIL: full-drift incremental run diverged from the full "
                   "resolve (reason='%s')\n",
                   inc->incremental_reason.c_str());
      return 1;
    }
    std::printf("full-drift input falls back (%s), bit-identical: yes\n",
                inc->incremental_reason.c_str());
    PrintRule();
  }

  BenchJsonWriter json("incremental");
  const double drift_levels[] = {0.01, 0.04, 0.16};
  const int cycles = 5;
  double speedup_at_gate = 0.0;
  bool feasibility_ok = true;

  for (const double drift : drift_levels) {
    std::printf("drift %.0f%% per cycle:\n", 100.0 * drift);
    std::printf("  %5s %12s %12s %8s %8s %8s\n", "cycle", "full_s", "inc_s",
                "dirty", "reused", "speedup");
    // Both tracks draw the same churn seed; the placements they churn are
    // the ones they each adopted, exactly like two controllers running the
    // two policies side by side.
    const uint64_t churn_seed =
        7000 + static_cast<uint64_t>(1000.0 * drift);
    Rng full_rng(churn_seed);
    Rng inc_rng(churn_seed);
    Placement full_live = steady;
    Placement inc_live = steady;
    IncrementalState state;
    StatusOr<RasaResult> prime =
        optimizer.Optimize(cluster, inc_live, OptimizeContext(nullptr, &state));
    RASA_CHECK(prime.ok()) << prime.status().ToString();
    inc_live = prime->new_placement;
    RebaseIncrementalState(cluster, inc_live, &state);

    double full_total = 0.0;
    double inc_total = 0.0;
    for (int cycle = 1; cycle <= cycles; ++cycle) {
      Churn(cluster, full_live, drift, full_rng);
      Stopwatch full_timer;
      StatusOr<RasaResult> full = optimizer.Optimize(cluster, full_live);
      const double full_seconds = full_timer.ElapsedSeconds();
      RASA_CHECK(full.ok()) << full.status().ToString();
      full_live = full->new_placement;
      full_total += full_seconds;

      Churn(cluster, inc_live, drift, inc_rng);
      Stopwatch inc_timer;
      StatusOr<RasaResult> inc =
          optimizer.Optimize(cluster, inc_live, OptimizeContext(nullptr, &state));
      const double inc_seconds = inc_timer.ElapsedSeconds();
      RASA_CHECK(inc.ok()) << inc.status().ToString();
      inc_live = inc->new_placement;
      RebaseIncrementalState(cluster, inc_live, &state);
      inc_total += inc_seconds;
      feasibility_ok &= inc_live.CheckFeasible().ok();

      std::printf("  %5d %12.3f %12.3f %8d %8d %7.1fx\n", cycle,
                  full_seconds, inc_seconds, inc->dirty_subproblems,
                  inc->reused_subproblems,
                  inc_seconds > 0.0 ? full_seconds / inc_seconds : 0.0);
      json.BeginRow()
          .Field("drift", StrFormat("%.0f%%", 100.0 * drift))
          .Field("cycle", cycle)
          .Field("full_seconds", full_seconds)
          .Field("incremental_seconds", inc_seconds)
          .Field("dirty_subproblems", inc->dirty_subproblems)
          .Field("reused_subproblems", inc->reused_subproblems)
          .Field("incremental", inc->incremental)
          .Field("reason", inc->incremental_reason)
          .Field("full_gained_affinity",
                 GainedAffinity(cluster, full_live))
          .Field("incremental_gained_affinity",
                 GainedAffinity(cluster, inc_live));
    }
    const double speedup = inc_total > 0.0 ? full_total / inc_total : 0.0;
    std::printf("  mean: full %.3fs, incremental %.3fs, speedup %.1fx\n",
                full_total / cycles, inc_total / cycles, speedup);
    json.BeginRow()
        .Field("drift", StrFormat("%.0f%%", 100.0 * drift))
        .Field("summary", true)
        .Field("mean_full_seconds", full_total / cycles)
        .Field("mean_incremental_seconds", inc_total / cycles)
        .Field("speedup", speedup);
    if (drift == 0.04) speedup_at_gate = speedup;
    PrintRule();
  }

  if (!feasibility_ok) {
    std::fprintf(stderr, "FAIL: an incremental placement was infeasible\n");
    return 1;
  }
  if (std::getenv("RASA_BENCH_NO_THRESHOLD") != nullptr) {
    std::printf("speedup threshold skipped: RASA_BENCH_NO_THRESHOLD set\n");
    return 0;
  }
  if (speedup_at_gate < 3.0) {
    std::fprintf(stderr,
                 "FAIL: expected >= 3x steady-state speedup at 4%% drift, "
                 "got %.1fx\n",
                 speedup_at_gate);
    return 1;
  }
  std::printf("speedup threshold (>= 3x at 4%% drift): PASS (%.1fx)\n",
              speedup_at_gate);
  return 0;
}
