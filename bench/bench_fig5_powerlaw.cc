// Fig. 5: Fitting exponential and power-law distributions to the total
// affinity distribution of the top services in a production cluster.
// Reproduces the claim that the power law fits better (Assumption 4.1).

#include <algorithm>

#include "bench_util.h"
#include "graph/powerlaw_fit.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Fig. 5 — power law vs exponential fit of T(s)",
              "rank-ordered total affinity of the top services per cluster");

  for (const ClusterSnapshot& snapshot : BenchClusters()) {
    std::vector<double> totals =
        SortedTotalAffinities(snapshot.cluster->affinity());
    // The paper plots the top 40 services of one production (full-scale)
    // cluster; scale the window with the affinity population so the small
    // scaled-down clusters are not dominated by their degenerate tail.
    int affinity_services = 0;
    for (int s = 0; s < snapshot.cluster->num_services(); ++s) {
      affinity_services += snapshot.cluster->affinity().Degree(s) > 0;
    }
    const int top = std::max(10, std::min(40, affinity_services / 5));
    totals.resize(top);
    const DecayFit power = FitPowerLaw(totals);
    const DecayFit expo = FitExponential(totals);
    std::printf("%-3s top-%d services:\n", snapshot.name.c_str(), top);
    std::printf("    power law  T(s) ~ %.4f * s^-%.3f   R^2 = %.4f\n",
                power.scale, power.exponent, power.r_squared);
    std::printf("    exponential T(s) ~ %.4f * e^(-%.3f s) R^2 = %.4f\n",
                expo.scale, expo.exponent, expo.r_squared);
    std::printf("    better fit: %s   (paper: power law, beta > 1)\n",
                power.r_squared >= expo.r_squared ? "POWER LAW" : "exponential");
    // Print the rank series for plotting.
    std::printf("    rank series:");
    for (int i = 0; i < top; i += std::max(1, top / 10)) {
      std::printf(" (%d, %.5f)", i + 1, totals[i]);
    }
    std::printf("\n");
    PrintRule();
  }
  return 0;
}
