// bench_compare — diffs two BENCH_<name>.json result files (the output of
// BenchJsonWriter) and fails on performance/quality regressions.
//
//   bench_compare [--tolerance=0.10] <baseline.json> <candidate.json>
//
// Rows are matched by their string/axis fields (cluster name, thread
// count, ...); numeric fields are classified by key name into
// lower-is-better (seconds, failures) and higher-is-better (speedup,
// gained affinity) and compared with the relative tolerance (default 10%,
// also settable via RASA_BENCH_COMPARE_TOL). Exit codes: 0 = no
// regressions, 1 = at least one regression, 2 = usage or parse error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_compare_lib.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--tolerance=F] <baseline.json> "
               "<candidate.json>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rasa::bench;

  CompareOptions options;
  if (const char* env = std::getenv("RASA_BENCH_COMPARE_TOL")) {
    const double v = std::atof(env);
    if (v > 0.0) options.tolerance = v;
  }
  const char* paths[2] = {nullptr, nullptr};
  int num_paths = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      const double v = std::atof(argv[i] + 12);
      if (v <= 0.0) return Usage();
      options.tolerance = v;
    } else if (num_paths < 2) {
      paths[num_paths++] = argv[i];
    } else {
      return Usage();
    }
  }
  if (num_paths != 2) return Usage();

  std::string texts[2];
  std::vector<BenchRow> rows[2];
  for (int i = 0; i < 2; ++i) {
    if (!ReadFile(paths[i], &texts[i])) {
      std::fprintf(stderr, "bench_compare: cannot read %s\n", paths[i]);
      return 2;
    }
    std::string error;
    if (!ParseBenchJson(texts[i], &rows[i], &error)) {
      std::fprintf(stderr, "bench_compare: %s: %s\n", paths[i],
                   error.c_str());
      return 2;
    }
  }

  std::printf("baseline:  %s (%zu rows)\ncandidate: %s (%zu rows)\n",
              paths[0], rows[0].size(), paths[1], rows[1].size());
  const CompareReport report = CompareBench(rows[0], rows[1], options);
  std::fputs(FormatCompareReport(report, options).c_str(), stdout);
  return report.regressions > 0 ? 1 : 0;
}
