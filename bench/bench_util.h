#ifndef RASA_BENCH_BENCH_UTIL_H_
#define RASA_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure reproduction benches. Every bench is
// a standalone binary that prints the paper-style rows. Environment knobs:
//   RASA_BENCH_SCALE    cluster downscale divisor (default 16; 1 = paper
//                       size — only sensible on a large machine)
//   RASA_BENCH_TIMEOUT  solver time-out in seconds (default 2; stands in
//                       for the paper's one-minute SLO)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/generator.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/selector_trainer.h"

namespace rasa::bench {

inline double BenchScale() {
  const char* env = std::getenv("RASA_BENCH_SCALE");
  const double v = env != nullptr ? std::atof(env) : 0.0;
  return v > 0.0 ? v : 16.0;
}

inline double BenchTimeout() {
  const char* env = std::getenv("RASA_BENCH_TIMEOUT");
  const double v = env != nullptr ? std::atof(env) : 0.0;
  return v > 0.0 ? v : 2.0;
}

/// Generates the four Table II clusters at the bench scale. Aborts the
/// bench on generation failure (cannot happen with default settings).
inline std::vector<ClusterSnapshot> BenchClusters() {
  std::vector<ClusterSnapshot> out;
  for (const ClusterSpec& spec : TableTwoSpecs(BenchScale())) {
    StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
    RASA_CHECK(snapshot.ok()) << snapshot.status().ToString();
    out.push_back(std::move(snapshot).value());
  }
  return out;
}

/// The selector used by the "full RASA" benches (Figs. 6, 7, 9, 10): the
/// trained GCN, cached at ./rasa_selector_cache.{gcn,mlp} so the labeling +
/// training pass runs once across all bench binaries.
inline AlgorithmSelector BenchSelector() {
  SelectorTrainingOptions train;
  train.num_samples = 120;
  train.label_timeout_seconds = std::max(0.2, BenchTimeout() / 3.0);
  train.cluster_scale = 1.5 * BenchScale();
  std::fprintf(stderr, "loading/training the GCN selector...\n");
  StatusOr<TrainedSelectors> selectors =
      GetOrTrainSelectors("rasa_selector_cache", train);
  RASA_CHECK(selectors.ok()) << selectors.status().ToString();
  return AlgorithmSelector(std::move(selectors->gcn));
}

inline void PrintHeader(const std::string& title, const std::string& what) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("scale=1/%.0f  timeout=%.2fs  (paper: full scale, 60s)\n",
              BenchScale(), BenchTimeout());
  std::printf("==================================================================\n");
}

inline void PrintRule() {
  std::printf("------------------------------------------------------------------\n");
}

}  // namespace rasa::bench

#endif  // RASA_BENCH_BENCH_UTIL_H_
