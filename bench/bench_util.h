#ifndef RASA_BENCH_BENCH_UTIL_H_
#define RASA_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure reproduction benches. Every bench is
// a standalone binary that prints the paper-style rows. Environment knobs:
//   RASA_BENCH_SCALE    cluster downscale divisor (default 16; 1 = paper
//                       size — only sensible on a large machine)
//   RASA_BENCH_TIMEOUT  solver time-out in seconds (default 2; stands in
//                       for the paper's one-minute SLO)
//   RASA_BENCH_JSON_DIR directory for machine-readable BENCH_<name>.json
//                       result files (default: current directory)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "cluster/generator.h"
#include "common/durable_io.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/selector_trainer.h"

namespace rasa::bench {

inline double BenchScale() {
  const char* env = std::getenv("RASA_BENCH_SCALE");
  const double v = env != nullptr ? std::atof(env) : 0.0;
  return v > 0.0 ? v : 16.0;
}

inline double BenchTimeout() {
  const char* env = std::getenv("RASA_BENCH_TIMEOUT");
  const double v = env != nullptr ? std::atof(env) : 0.0;
  return v > 0.0 ? v : 2.0;
}

/// Generates the four Table II clusters at the bench scale. Aborts the
/// bench on generation failure (cannot happen with default settings).
inline std::vector<ClusterSnapshot> BenchClusters() {
  std::vector<ClusterSnapshot> out;
  for (const ClusterSpec& spec : TableTwoSpecs(BenchScale())) {
    StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
    RASA_CHECK(snapshot.ok()) << snapshot.status().ToString();
    out.push_back(std::move(snapshot).value());
  }
  return out;
}

/// The selector used by the "full RASA" benches (Figs. 6, 7, 9, 10): the
/// trained GCN, cached at the resolved selector-cache prefix (see
/// ResolveSelectorCachePrefix: RASA_SELECTOR_CACHE env or
/// .rasa_cache/ under the working directory) so the labeling + training
/// pass runs once across all bench binaries without littering the source
/// tree with model artifacts.
inline AlgorithmSelector BenchSelector() {
  SelectorTrainingOptions train;
  train.num_samples = 120;
  train.label_timeout_seconds = std::max(0.2, BenchTimeout() / 3.0);
  train.cluster_scale = 1.5 * BenchScale();
  std::fprintf(stderr, "loading/training the GCN selector...\n");
  StatusOr<TrainedSelectors> selectors =
      GetOrTrainSelectors(ResolveSelectorCachePrefix(), train);
  RASA_CHECK(selectors.ok()) << selectors.status().ToString();
  return AlgorithmSelector(std::move(selectors->gcn));
}

inline void PrintHeader(const std::string& title, const std::string& what) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("scale=1/%.0f  timeout=%.2fs  (paper: full scale, 60s)\n",
              BenchScale(), BenchTimeout());
  std::printf("==================================================================\n");
}

inline void PrintRule() {
  std::printf("------------------------------------------------------------------\n");
}

/// Machine-readable bench results: accumulates flat rows of key -> value and
/// writes them as a JSON array of objects to BENCH_<name>.json (in
/// RASA_BENCH_JSON_DIR, default the working directory). Numbers are emitted
/// unquoted with full round-trip precision so downstream tooling can diff
/// runs bit-exactly.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string name) : name_(std::move(name)) {}
  ~BenchJsonWriter() { Flush(); }

  BenchJsonWriter& BeginRow() {
    rows_.emplace_back();
    return *this;
  }
  BenchJsonWriter& Field(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, "\"" + Escaped(value) + "\"");
    return *this;
  }
  BenchJsonWriter& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  BenchJsonWriter& Field(const std::string& key, double value) {
    rows_.back().emplace_back(key, StrFormat("%.17g", value));
    return *this;
  }
  BenchJsonWriter& Field(const std::string& key, int value) {
    rows_.back().emplace_back(key, StrFormat("%d", value));
    return *this;
  }
  BenchJsonWriter& Field(const std::string& key, bool value) {
    rows_.back().emplace_back(key, value ? "true" : "false");
    return *this;
  }

  /// Writes the file; called automatically on destruction (idempotent).
  /// Crash-atomic (tmp + fsync + rename): a result file downstream tooling
  /// sees is always complete, never a torn prefix.
  void Flush() {
    if (flushed_) return;
    flushed_ = true;
    const std::string path = Path();
    std::string body = "[\n";
    for (size_t r = 0; r < rows_.size(); ++r) {
      body += "  {";
      for (size_t f = 0; f < rows_[r].size(); ++f) {
        if (f > 0) body += ", ";
        body += "\"" + Escaped(rows_[r][f].first) +
                "\": " + rows_[r][f].second;
      }
      body += "}";
      if (r + 1 < rows_.size()) body += ",";
      body += "\n";
    }
    body += "]\n";
    const Status written = AtomicWriteFile(path, body);
    if (!written.ok()) {
      std::fprintf(stderr, "bench: cannot write %s: %s\n", path.c_str(),
                   written.ToString().c_str());
      return;
    }
    std::fprintf(stderr, "bench: wrote %s (%zu rows)\n", path.c_str(),
                 rows_.size());
  }

  std::string Path() const {
    const char* dir = std::getenv("RASA_BENCH_JSON_DIR");
    const std::string prefix =
        dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : "";
    return prefix + "BENCH_" + name_ + ".json";
  }

 private:
  // Shared JSON plumbing (also used by the metrics exporter).
  static std::string Escaped(const std::string& s) {
    return JsonWriter::Escaped(s);
  }

  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
  bool flushed_ = false;
};

}  // namespace rasa::bench

#endif  // RASA_BENCH_BENCH_UTIL_H_
