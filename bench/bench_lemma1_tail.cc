// Lemma 1 (§IV-B2): under Assumption 4.1 (T(s) ~ s^-beta, beta > 1), the
// total affinity of everything outside the top O(ln^{1-eps} N) services is
// O(1 / ln^gamma N) — i.e. vanishing. This bench validates the bound
// empirically on generated graphs of growing size: the tail share must
// shrink as N grows while the master share approaches 1.

#include <cmath>

#include "bench_util.h"
#include "common/rng.h"
#include "core/partitioning.h"
#include "graph/powerlaw_fit.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Lemma 1 — tail affinity of non-master services vanishes",
              "master set = top alpha*N services, alpha = 45 ln^0.66(N)/N");

  std::printf("%8s %10s %12s %14s %16s\n", "N", "edges", "alpha",
              "master share", "tail share");
  PrintRule();
  for (int n : {100, 200, 400, 800, 1600, 3200}) {
    Rng rng(42 + n);
    AffinityGraph graph = GeneratePowerLawGraph(
        n, static_cast<int>(1.3 * n), 1.5, rng, /*max_degree=*/14);
    const double alpha = MasterRatio(n, 45.0, 0.66);
    const int top = std::max(1, static_cast<int>(std::floor(alpha * n)));
    // Master share of total affinity: sum of the top-k weighted degrees,
    // over twice the total weight (each internal edge counts twice).
    std::vector<double> totals = SortedTotalAffinities(graph);
    double master = 0.0, all = 0.0;
    for (size_t i = 0; i < totals.size(); ++i) {
      all += totals[i];
      if (static_cast<int>(i) < top) master += totals[i];
    }
    const double master_share = all > 0.0 ? master / all : 0.0;
    std::printf("%8d %10d %12.4f %13.1f%% %15.1f%%\n", n, graph.num_edges(),
                alpha, 100.0 * master_share, 100.0 * (1.0 - master_share));
  }
  PrintRule();
  std::printf("expected: the master set shrinks (alpha -> 0) while its "
              "affinity share stays ~90%%+ — the tail stays o(1)-small as "
              "Lemma 1 promises, which is what makes master-affinity "
              "partitioning nearly lossless\n");
  return 0;
}
