// Fig. 9: Gained affinity comparisons of different algorithms for RASA
// under a time-out: ORIGINAL / POP / K8S+ / APPLSCI19 / RASA.
// Expected shape: RASA best on every cluster; a large multiple of ORIGINAL
// (the paper reports 13.83x on average) and double-digit-% better than the
// strongest baseline (paper: +17.66% vs APPLSCI19).

#include "baselines/baselines.h"
#include "bench_util.h"
#include "core/objective.h"
#include "core/rasa.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Fig. 9 — gained affinity by scheduling algorithm",
              "ORIGINAL / POP / K8S+ / APPLSCI19 / RASA (ours)");

  const AlgorithmSelector selector = rasa::bench::BenchSelector();
  std::vector<ClusterSnapshot> clusters = BenchClusters();
  std::printf("%-12s", "Algorithm");
  for (const ClusterSnapshot& c : clusters) std::printf(" %8s", c.name.c_str());
  std::printf("\n");
  PrintRule();

  std::vector<double> original_row, pop_row, k8s_row, appl_row, rasa_row;
  for (const ClusterSnapshot& snapshot : clusters) {
    const double timeout = BenchTimeout();
    original_row.push_back(
        GainedAffinity(*snapshot.cluster, snapshot.original_placement));
    StatusOr<BaselineResult> pop =
        RunPop(*snapshot.cluster, snapshot.original_placement,
               Deadline::AfterSeconds(timeout), 5);
    pop_row.push_back(pop.ok() ? pop->gained_affinity : -1.0);
    StatusOr<BaselineResult> k8s = RunK8sPlus(
        *snapshot.cluster, Deadline::AfterSeconds(timeout), 5);
    k8s_row.push_back(k8s.ok() ? k8s->gained_affinity : -1.0);
    StatusOr<BaselineResult> appl =
        RunApplsci19(*snapshot.cluster, snapshot.original_placement,
                     Deadline::AfterSeconds(timeout), 5);
    appl_row.push_back(appl.ok() ? appl->gained_affinity : -1.0);

    RasaOptions options;
    options.timeout_seconds = timeout;
    options.compute_migration = false;
    RasaOptimizer optimizer(options, selector);
    StatusOr<RasaResult> rasa =
        optimizer.Optimize(*snapshot.cluster, snapshot.original_placement);
    rasa_row.push_back(rasa.ok() ? rasa->new_gained_affinity : -1.0);
  }

  auto print_row = [&](const char* name, const std::vector<double>& row) {
    std::printf("%-12s", name);
    for (double v : row) {
      if (v < 0.0) {
        std::printf(" %8s", "OOT");
      } else {
        std::printf(" %8.4f", v);
      }
    }
    std::printf("\n");
  };
  print_row("ORIGINAL", original_row);
  print_row("POP", pop_row);
  print_row("K8S+", k8s_row);
  print_row("APPLSCI19", appl_row);
  print_row("RASA (ours)", rasa_row);
  PrintRule();

  // Aggregate ratios as reported in §V-D.
  double vs_original = 0.0, vs_pop = 0.0, vs_k8s = 0.0, vs_appl = 0.0;
  for (size_t i = 0; i < rasa_row.size(); ++i) {
    vs_original += rasa_row[i] / std::max(1e-9, original_row[i]);
    vs_pop += rasa_row[i] / std::max(1e-9, pop_row[i]) - 1.0;
    vs_k8s += rasa_row[i] / std::max(1e-9, k8s_row[i]) - 1.0;
    vs_appl += rasa_row[i] / std::max(1e-9, appl_row[i]) - 1.0;
  }
  const double n = static_cast<double>(rasa_row.size());
  std::printf("RASA vs ORIGINAL:  %.2fx on average   (paper: 13.83x)\n",
              vs_original / n);
  std::printf("RASA vs POP:       +%.1f%% on average (paper: +54.91%%)\n",
              100.0 * vs_pop / n);
  std::printf("RASA vs K8S+:      +%.1f%% on average (paper: +54.69%%)\n",
              100.0 * vs_k8s / n);
  std::printf("RASA vs APPLSCI19: +%.1f%% on average (paper: +17.66%%)\n",
              100.0 * vs_appl / n);
  return 0;
}
