#ifndef RASA_BENCH_BENCH_PROD_UTIL_H_
#define RASA_BENCH_BENCH_PROD_UTIL_H_

// Shared setup for the production-deployment figures (Figs. 11-13): builds
// a cluster, computes the WITH-RASA placement, and runs the request-level
// production simulator against the WITHOUT-RASA (ORIGINAL) placement.

#include "bench_util.h"
#include "core/rasa.h"
#include "sim/production.h"

namespace rasa::bench {

struct ProductionSetup {
  ClusterSnapshot snapshot;
  ProductionSimReport report;
};

inline ProductionSetup MakeProductionSetup() {
  const AlgorithmSelector selector = BenchSelector();
  std::vector<ClusterSnapshot> clusters = BenchClusters();
  ProductionSetup setup{std::move(clusters[0]), {}};  // M1 stands in

  RasaOptions options;
  options.timeout_seconds = BenchTimeout();
  options.compute_migration = false;
  RasaOptimizer optimizer(options, selector);
  StatusOr<RasaResult> result = optimizer.Optimize(
      *setup.snapshot.cluster, setup.snapshot.original_placement);
  RASA_CHECK(result.ok()) << result.status().ToString();

  ProductionSimOptions sim;
  sim.time_steps = 48;
  setup.report = SimulateProduction(*setup.snapshot.cluster,
                                    result->new_placement,
                                    setup.snapshot.original_placement, sim,
                                    /*tracked_pairs=*/4);
  return setup;
}

inline void PrintSeries(const char* label, const std::vector<double>& xs) {
  std::printf("    %-16s", label);
  for (size_t t = 0; t < xs.size(); t += 4) std::printf(" %.3f", xs[t]);
  std::printf("\n");
}

}  // namespace rasa::bench

#endif  // RASA_BENCH_BENCH_PROD_UTIL_H_
