// Fig. 11: Comparison of (normalized) end-to-end latency for four critical
// service pairs in production: WITH RASA vs WITHOUT RASA vs the ONLY
// COLLOCATED upper bound.
// Expected shape: relative latency improvements in the double digits
// (paper: 16.77% - 72.16%), with WITH-RASA close to ONLY-COLLOCATED.

#include "bench_prod_util.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Fig. 11 — normalized end-to-end latency, 4 critical pairs",
              "series sampled every 4 steps of a 48-step (24h) simulation");

  ProductionSetup setup = MakeProductionSetup();
  for (const PairProductionSeries& pair : setup.report.pairs) {
    std::printf(
        "  pair (%s, %s)  traffic share %.4f  localized: %.0f%% -> %.0f%%\n",
        setup.snapshot.cluster->service(pair.service_u).name.c_str(),
        setup.snapshot.cluster->service(pair.service_v).name.c_str(),
        pair.qps_weight, 100.0 * pair.without_ratio, 100.0 * pair.with_ratio);
    PrintSeries("WITHOUT RASA", pair.latency_without);
    PrintSeries("WITH RASA", pair.latency_with);
    PrintSeries("ONLY COLLOC.", pair.latency_collocated);
    std::printf("    latency improvement: %.2f%%  (paper range: 16.77%% - "
                "72.16%%)\n",
                100.0 * pair.latency_improvement);
    PrintRule();
  }
  return 0;
}
