// Ablation bench (DESIGN.md): quantifies the design choices inside the
// algorithm pool on the M1 subproblems.
//
//   - MIP per-machine (exact formulation, ours) vs MIP grouped (the
//     literal a_{s,s',g} formulation over machine groups g in F, which is
//     smaller but over-counts and must be disaggregated);
//   - CG full (ours) vs CG without pair pricing, without column
//     management, and without greedy completion;
//   - plain affinity greedy as the floor.

#include "bench_util.h"
#include "core/cg.h"
#include "core/greedy.h"
#include "core/mip_algorithm.h"
#include "core/partitioning.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Ablation — algorithm-pool design choices",
              "per-subproblem gained affinity on M1's crucial subproblems");

  std::vector<ClusterSnapshot> clusters = BenchClusters();
  const ClusterSnapshot& snapshot = clusters[0];  // M1
  PartitionResult partition = PartitionServices(
      *snapshot.cluster, snapshot.original_placement, {});

  struct Variant {
    const char* name;
    double total = 0.0;
    double seconds = 0.0;
  };
  Variant variants[] = {{"GREEDY"},
                        {"MIP per-machine"},
                        {"MIP grouped (g in F)"},
                        {"CG full (ours)"},
                        {"CG no pair pricing"},
                        {"CG no column mgmt"},
                        {"CG no completion"}};
  double total_affinity = 0.0;

  for (const Subproblem& sp : partition.subproblems) {
    if (sp.services.empty() || sp.machines.empty()) continue;
    total_affinity += sp.internal_affinity;
    const double timeout = BenchTimeout();

    auto record = [&](Variant& v, double gained, double secs) {
      v.total += gained;
      v.seconds += secs;
    };

    {
      Stopwatch sw;
      Placement scratch = partition.base_placement;
      SubproblemSolution g =
          GreedyAffinityPlace(*snapshot.cluster, sp, scratch);
      record(variants[0], g.gained_affinity, sw.ElapsedSeconds());
    }
    {
      Stopwatch sw;
      MipAlgorithmOptions o;
      o.deadline = Deadline::AfterSeconds(timeout);
      StatusOr<SubproblemSolution> r = SolveSubproblemMip(
          *snapshot.cluster, sp, partition.base_placement, o);
      record(variants[1], r.ok() ? r->gained_affinity : 0.0,
             sw.ElapsedSeconds());
    }
    {
      Stopwatch sw;
      MipAlgorithmOptions o;
      o.deadline = Deadline::AfterSeconds(timeout);
      StatusOr<SubproblemSolution> r = SolveSubproblemMipGrouped(
          *snapshot.cluster, sp, partition.base_placement, o);
      record(variants[2], r.ok() ? r->gained_affinity : 0.0,
             sw.ElapsedSeconds());
    }
    for (int variant = 0; variant < 4; ++variant) {
      Stopwatch sw;
      CgOptions o;
      o.deadline = Deadline::AfterSeconds(timeout);
      if (variant == 1) o.pair_pricing = false;
      if (variant == 2) o.max_patterns_per_machine = 0;
      if (variant == 3) o.greedy_completion = false;
      StatusOr<SubproblemSolution> r = SolveSubproblemCg(
          *snapshot.cluster, sp, partition.base_placement,
          snapshot.original_placement, o);
      record(variants[3 + variant], r.ok() ? r->gained_affinity : 0.0,
             sw.ElapsedSeconds());
    }
  }

  std::printf("total crucial affinity available: %.4f\n\n", total_affinity);
  std::printf("%-22s %14s %10s %10s\n", "variant", "gained", "of avail",
              "seconds");
  PrintRule();
  for (const Variant& v : variants) {
    std::printf("%-22s %14.4f %9.1f%% %10.2f\n", v.name, v.total,
                100.0 * v.total / std::max(1e-12, total_affinity), v.seconds);
  }
  std::printf(
      "\nnotes: a failed solve (model over the row cap / OOT) counts as 0 "
      "here — in the full RASA pipeline it falls back to GREEDY instead.\n"
      "expected: CG full >= its ablations; the grouped (g in F) MIP stays "
      "tractable where the exact per-machine model OOTs, at the cost of "
      "disaggregation losses; pair pricing is the biggest CG ingredient.\n");
  return 0;
}
