// Ablation bench (DESIGN.md): quantifies the design choices inside the
// algorithm pool on the M1 subproblems, plus the solver core underneath
// them.
//
// Section "algorithm" (per-subproblem gained affinity):
//   - MIP per-machine (exact formulation, ours) vs MIP grouped (the
//     literal a_{s,s',g} formulation over machine groups g in F, which is
//     smaller but over-counts and must be disaggregated);
//   - CG full (ours) vs CG without pair pricing, without column
//     management, and without greedy completion;
//   - plain affinity greedy as the floor.
//
// Section "lp_kernel" (wall time on the largest subproblem LP
// relaxations, the fig-10-scale models): dense tableau (the seed solver)
// vs sparse revised simplex with the maintained eta-file factorization.
// Unless RASA_BENCH_NO_THRESHOLD is set, the revised kernel must be
// >= 5x faster in aggregate — the headline claim of the solver-core PR.
//
// Section "mip_warm_start": branch-and-bound on the largest subproblem
// model with parent-basis warm starts on vs off (informational; the
// speedup comes from dual-simplex repair needing a handful of pivots
// per node instead of a full cold solve).
//
// Machine-readable output: BENCH_ablation_solvers.json.

#include <algorithm>

#include "bench_util.h"
#include "core/cg.h"
#include "core/greedy.h"
#include "core/mip_algorithm.h"
#include "core/partitioning.h"
#include "lp/simplex.h"
#include "mip/solver.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Ablation — algorithm pool and solver core",
              "per-subproblem gained affinity on M1; LP kernel wall time");

  std::vector<ClusterSnapshot> clusters = BenchClusters();
  const ClusterSnapshot& snapshot = clusters[0];  // M1
  PartitionResult partition = PartitionServices(
      *snapshot.cluster, snapshot.original_placement, {});
  BenchJsonWriter json("ablation_solvers");

  struct Variant {
    const char* name;
    double total = 0.0;
    double seconds = 0.0;
  };
  Variant variants[] = {{"GREEDY"},
                        {"MIP per-machine"},
                        {"MIP grouped (g in F)"},
                        {"CG full (ours)"},
                        {"CG no pair pricing"},
                        {"CG no column mgmt"},
                        {"CG no completion"}};
  double total_affinity = 0.0;

  for (const Subproblem& sp : partition.subproblems) {
    if (sp.services.empty() || sp.machines.empty()) continue;
    total_affinity += sp.internal_affinity;
    const double timeout = BenchTimeout();

    auto record = [&](Variant& v, double gained, double secs) {
      v.total += gained;
      v.seconds += secs;
    };

    {
      Stopwatch sw;
      Placement scratch = partition.base_placement;
      SubproblemSolution g =
          GreedyAffinityPlace(*snapshot.cluster, sp, scratch);
      record(variants[0], g.gained_affinity, sw.ElapsedSeconds());
    }
    {
      Stopwatch sw;
      MipAlgorithmOptions o;
      o.deadline = Deadline::AfterSeconds(timeout);
      StatusOr<SubproblemSolution> r = SolveSubproblemMip(
          *snapshot.cluster, sp, partition.base_placement, o);
      record(variants[1], r.ok() ? r->gained_affinity : 0.0,
             sw.ElapsedSeconds());
    }
    {
      Stopwatch sw;
      MipAlgorithmOptions o;
      o.deadline = Deadline::AfterSeconds(timeout);
      StatusOr<SubproblemSolution> r = SolveSubproblemMipGrouped(
          *snapshot.cluster, sp, partition.base_placement, o);
      record(variants[2], r.ok() ? r->gained_affinity : 0.0,
             sw.ElapsedSeconds());
    }
    for (int variant = 0; variant < 4; ++variant) {
      Stopwatch sw;
      CgOptions o;
      o.deadline = Deadline::AfterSeconds(timeout);
      if (variant == 1) o.pair_pricing = false;
      if (variant == 2) o.max_patterns_per_machine = 0;
      if (variant == 3) o.greedy_completion = false;
      StatusOr<SubproblemSolution> r = SolveSubproblemCg(
          *snapshot.cluster, sp, partition.base_placement,
          snapshot.original_placement, o);
      record(variants[3 + variant], r.ok() ? r->gained_affinity : 0.0,
             sw.ElapsedSeconds());
    }
  }

  std::printf("total crucial affinity available: %.4f\n\n", total_affinity);
  std::printf("%-22s %14s %10s %10s\n", "variant", "gained", "of avail",
              "seconds");
  PrintRule();
  for (const Variant& v : variants) {
    std::printf("%-22s %14.4f %9.1f%% %10.2f\n", v.name, v.total,
                100.0 * v.total / std::max(1e-12, total_affinity), v.seconds);
    json.BeginRow()
        .Field("section", "algorithm")
        .Field("variant", v.name)
        .Field("gained_affinity", v.total)
        .Field("seconds", v.seconds);
  }

  // ---- Solver core: dense tableau vs revised simplex -----------------
  // Fixed fig-10-scale instances — M1 at 1/48, 1/40, and 1/32 scale,
  // independent of RASA_BENCH_SCALE — so the kernel comparison always
  // runs at the scale the >= 5x claim is made for. Each model is solved
  // under a bounded iteration probe: a couple of heavily degenerate
  // instances stall BOTH kernels into the iteration limit (a seed
  // pathology the revised kernel reproduces faithfully), and timing an
  // iteration limit measures the limit, not the kernel, so those models
  // are skipped and logged instead.
  std::vector<SubproblemMip> models;
  for (const double scale : {48.0, 40.0, 32.0}) {
    StatusOr<ClusterSnapshot> fig10 = GenerateCluster(M1Spec(scale));
    RASA_CHECK(fig10.ok()) << fig10.status().ToString();
    PartitionResult fig10_partition = PartitionServices(
        *fig10->cluster, fig10->original_placement, {});
    for (const Subproblem& sp : fig10_partition.subproblems) {
      if (sp.services.empty() || sp.machines.empty()) continue;
      StatusOr<SubproblemMip> mip = BuildSubproblemMip(
          *fig10->cluster, sp, fig10_partition.base_placement,
          MipAlgorithmOptions().max_model_rows);
      if (!mip.ok()) continue;
      const int rows = mip->model.num_constraints();
      if (rows < 200 || rows > 1200) continue;
      models.push_back(std::move(mip).value());
    }
  }
  std::sort(models.begin(), models.end(),
            [](const SubproblemMip& a, const SubproblemMip& b) {
              return a.model.num_constraints() > b.model.num_constraints();
            });

  std::printf("\nLP kernel on %d fig-10-scale subproblem relaxations:\n",
              static_cast<int>(models.size()));
  std::printf("%-22s %10s %12s %10s\n", "kernel", "seconds", "pivots",
              "speedup");
  PrintRule();
  // Generous for every solvable instance in the band (they need < 4k
  // pivots); bounds the cost of detecting a stalled one.
  constexpr int kProbeIterations = 8000;
  double dense_seconds = 0.0, revised_seconds = 0.0;
  int dense_pivots = 0, revised_pivots = 0;
  int refactorizations = 0, max_eta = 0;
  int objective_mismatches = 0, timed_models = 0;
  for (const SubproblemMip& m : models) {
    LpOptions dense;
    dense.algorithm = LpAlgorithm::kDenseTableau;
    dense.max_iterations = kProbeIterations;
    Stopwatch sw_dense;
    LpResult rd = SolveLp(m.model, dense);
    const double dsecs = sw_dense.ElapsedSeconds();

    LpOptions revised;
    revised.algorithm = LpAlgorithm::kRevised;
    revised.dense_size_cutoff = 0;  // force the factorized kernel
    revised.max_iterations = kProbeIterations;
    Stopwatch sw_revised;
    LpResult rr = SolveLp(m.model, revised);
    const double rsecs = sw_revised.ElapsedSeconds();

    if (rd.status == LpStatus::kIterationLimit ||
        rr.status == LpStatus::kIterationLimit) {
      // One-sided stalls are reported but not timed: the stalled side's
      // cost is the probe cap, not the kernel. (A dense-only stall is the
      // revised kernel winning outright; the reverse would be a pivot-path
      // regression worth seeing in the log.)
      const char* who = rd.status == LpStatus::kIterationLimit
                            ? (rr.status == LpStatus::kIterationLimit
                                   ? "both kernels stall"
                                   : "only the dense tableau stalls")
                            : "only the revised simplex stalls";
      std::printf("  (skipped %d-row model: %s past %d iterations)\n",
                  m.model.num_constraints(), who, kProbeIterations);
      continue;
    }
    ++timed_models;
    dense_seconds += dsecs;
    dense_pivots += rd.iterations;
    revised_seconds += rsecs;
    revised_pivots += rr.iterations;
    refactorizations += rr.refactorizations;
    max_eta = std::max(max_eta, rr.max_eta_length);

    if (rd.status != rr.status ||
        (rd.status == LpStatus::kOptimal &&
         std::abs(rd.objective - rr.objective) >
             1e-6 * std::max(1.0, std::abs(rd.objective)))) {
      ++objective_mismatches;
    }
  }
  const double lp_speedup =
      revised_seconds > 0.0 ? dense_seconds / revised_seconds : 0.0;
  std::printf("%-22s %10.3f %12d %10s\n", "dense tableau (seed)",
              dense_seconds, dense_pivots, "1.00x");
  std::printf("%-22s %10.3f %12d %9.2fx\n", "revised simplex (ours)",
              revised_seconds, revised_pivots, lp_speedup);
  std::printf("  refactorizations=%d max_eta_length=%d\n", refactorizations,
              max_eta);
  json.BeginRow()
      .Field("section", "lp_kernel")
      .Field("variant", "dense tableau")
      .Field("seconds", dense_seconds)
      .Field("pivots", dense_pivots)
      .Field("models", timed_models);
  json.BeginRow()
      .Field("section", "lp_kernel")
      .Field("variant", "revised simplex")
      .Field("seconds", revised_seconds)
      .Field("pivots", revised_pivots)
      .Field("speedup", lp_speedup)
      .Field("refactorizations", refactorizations)
      .Field("max_eta_length", max_eta);

  // ---- MIP warm starts: parent basis reuse across B&B nodes ----------
  int cold_nodes = 0, warm_nodes = 0;
  if (!models.empty()) {
    const LpModel& model = models.front().model;
    std::printf("\nB&B warm starts on the largest model (%d rows, %d cols):\n",
                model.num_constraints(), model.num_variables());
    std::printf("%-22s %10s %8s %12s %10s\n", "variant", "seconds", "nodes",
                "pivots", "warm");
    PrintRule();
    for (const bool warm : {false, true}) {
      MipOptions o;
      o.deadline = Deadline::AfterSeconds(10.0 * BenchTimeout());
      o.warm_start_nodes = warm;
      Stopwatch sw;
      MipResult r = SolveMip(model, o);
      const double seconds = sw.ElapsedSeconds();
      (warm ? warm_nodes : cold_nodes) = r.nodes_explored;
      // Both runs are deadline-bound at this scale, so the warm win shows
      // up as node throughput within the same budget, not wall time.
      const double node_ratio =
          warm && cold_nodes > 0
              ? static_cast<double>(r.nodes_explored) / cold_nodes
              : 1.0;
      std::printf("%-22s %10.3f %8d %12d %6d/%d\n",
                  warm ? "warm (ours)" : "cold", seconds, r.nodes_explored,
                  r.lp_iterations, r.warm_started_nodes, r.nodes_explored);
      json.BeginRow()
          .Field("section", "mip_warm_start")
          .Field("variant", warm ? "warm" : "cold")
          .Field("seconds", seconds)
          .Field("nodes", r.nodes_explored)
          .Field("pivots", r.lp_iterations)
          .Field("warm_started_nodes", r.warm_started_nodes)
          .Field("speedup", node_ratio);
    }
  }

  std::printf(
      "\nnotes: a failed solve (model over the row cap / OOT) counts as 0 "
      "here — in the full RASA pipeline it falls back to GREEDY instead.\n"
      "expected: CG full >= its ablations; the grouped (g in F) MIP stays "
      "tractable where the exact per-machine model OOTs, at the cost of "
      "disaggregation losses; pair pricing is the biggest CG ingredient; "
      "the revised LP kernel dominates dense at fig-10 scale.\n");

  if (objective_mismatches > 0) {
    std::fprintf(stderr, "FAIL: %d dense/revised LP disagreement(s)\n",
                 objective_mismatches);
    return 1;
  }
  if (std::getenv("RASA_BENCH_NO_THRESHOLD") != nullptr) {
    // Smoke mode: clusters are too small for the factorization to pay for
    // itself, so only the agreement check is asserted and the timing rows
    // are recorded for bench_compare.
    std::printf("speedup threshold skipped: RASA_BENCH_NO_THRESHOLD set\n");
    return 0;
  }
  if (lp_speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: revised simplex reached only %.2fx over the dense "
                 "tableau on fig-10-scale LPs (need >= 5x)\n",
                 lp_speedup);
    return 1;
  }
  std::printf("revised simplex: %.2fx over dense (>= 5x required); "
              "warm B&B: %d vs %d nodes in the same budget\n",
              lp_speedup, warm_nodes, cold_nodes);
  return 0;
}
