// Fig. 6: Comparison of the gained affinity of different partitioning
// algorithms under a one-minute time-out (scaled here), plus the §V-B text
// numbers: multi-stage partitioning loss and partitioning time overhead.
// Expected shape: MULTI-STAGE > KAHIP > RANDOM; NO-PARTITION only succeeds
// on the small cluster (M3).

#include "bench_util.h"
#include "core/cg.h"
#include "core/rasa.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Fig. 6 — gained affinity by service-partitioning algorithm",
              "modes: NO-PARTITION / RANDOM / KAHIP / MULTI-STAGE (ours)");

  struct Mode {
    const char* name;
    PartitionMode mode;
  };
  const Mode modes[] = {{"NO-PARTITION", PartitionMode::kNoPartition},
                        {"RANDOM-PARTITION", PartitionMode::kRandom},
                        {"KAHIP", PartitionMode::kKahip},
                        {"MULTI-STAGE (ours)", PartitionMode::kMultiStage}};

  const AlgorithmSelector selector = rasa::bench::BenchSelector();

  std::printf("%-20s", "Algorithm");
  std::vector<ClusterSnapshot> clusters = BenchClusters();
  for (const ClusterSnapshot& c : clusters) std::printf(" %8s", c.name.c_str());
  std::printf("\n");
  PrintRule();

  std::vector<double> multi_stage_loss(clusters.size(), 0.0);
  std::vector<double> multi_stage_overhead(clusters.size(), 0.0);

  for (const Mode& mode : modes) {
    std::printf("%-20s", mode.name);
    for (size_t ci = 0; ci < clusters.size(); ++ci) {
      const ClusterSnapshot& snapshot = clusters[ci];
      if (mode.mode == PartitionMode::kNoPartition) {
        // NO-PARTITION feeds the whole problem to one solver run. It only
        // counts as "finished" when the solver terminates of its own accord
        // inside the time-out — cut off mid-optimization means no solution,
        // which the paper reports as OOT.
        PartitioningOptions popt;
        popt.mode = PartitionMode::kNoPartition;
        PartitionResult partition = PartitionServices(
            *snapshot.cluster, snapshot.original_placement, popt);
        CgOptions cg_options;
        cg_options.deadline = Deadline::AfterSeconds(BenchTimeout());
        CgStats stats;
        StatusOr<SubproblemSolution> solution = SolveSubproblemCg(
            *snapshot.cluster, partition.subproblems.front(),
            partition.base_placement, snapshot.original_placement, cg_options,
            &stats);
        if (!solution.ok() || stats.hit_deadline) {
          std::printf(" %8s", "OOT");
        } else {
          std::printf(" %8.4f", solution->gained_affinity);
        }
        continue;
      }
      RasaOptions options;
      options.timeout_seconds = BenchTimeout();
      options.partitioning.mode = mode.mode;
      options.compute_migration = false;
      RasaOptimizer optimizer(options, selector);
      StatusOr<RasaResult> result =
          optimizer.Optimize(*snapshot.cluster, snapshot.original_placement);
      if (!result.ok()) {
        std::printf(" %8s", "OOT");
      } else {
        std::printf(" %8.4f", result->new_gained_affinity);
        if (mode.mode == PartitionMode::kMultiStage) {
          multi_stage_loss[ci] =
              1.0 - result->partition_stats.crucial_internal_affinity;
          multi_stage_overhead[ci] =
              result->partition_stats.elapsed_seconds /
              std::max(1e-9, result->elapsed_seconds);
        }
      }
    }
    std::printf("\n");
  }

  PrintRule();
  std::printf("§V-B text — multi-stage partitioning cost per cluster:\n");
  for (size_t ci = 0; ci < clusters.size(); ++ci) {
    std::printf(
        "  %-3s affinity loss from partitioning %.1f%%   partitioning time "
        "%.1f%% of total (paper: <12%% loss, <10%% time at full scale)\n",
        clusters[ci].name.c_str(), 100.0 * multi_stage_loss[ci],
        100.0 * multi_stage_overhead[ci]);
  }
  return 0;
}
