// Micro-benchmarks of the substrate layers (google-benchmark): simplex
// pivots, branch-and-bound, graph partitioning, GCN forward/backward,
// objective evaluation and CG pricing. These are throughput sanity checks
// rather than paper figures.

#include <benchmark/benchmark.h>

#include "cluster/generator.h"
#include "common/rng.h"
#include "core/cg.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "core/partitioning.h"
#include "core/selector.h"
#include "graph/partition.h"
#include "lp/simplex.h"
#include "mip/solver.h"
#include "ml/gcn.h"

namespace rasa {
namespace {

LpModel RandomLp(int n, int k, uint64_t seed) {
  Rng rng(seed);
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  for (int j = 0; j < n; ++j) {
    m.AddVariable(0.0, rng.NextDouble(1.0, 10.0), rng.NextDouble(-1.0, 3.0));
  }
  for (int c = 0; c < k; ++c) {
    std::vector<LinearTerm> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.NextBool(0.5)) terms.push_back({j, rng.NextDouble(0.1, 2.0)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    m.AddConstraint(ConstraintType::kLessEqual, rng.NextDouble(2.0, 20.0),
                    std::move(terms));
  }
  return m;
}

void BM_SimplexSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LpModel model = RandomLp(n, n / 2, 42);
  for (auto _ : state) {
    LpResult r = SolveLp(model);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_SimplexSolve)->Arg(16)->Arg(64)->Arg(256);

void BM_MipKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  LpModel m;
  m.SetObjectiveSense(ObjectiveSense::kMaximize);
  std::vector<LinearTerm> terms;
  for (int j = 0; j < n; ++j) {
    int v = m.AddVariable(0, 1, rng.NextDouble(1.0, 10.0));
    m.SetInteger(v);
    terms.push_back({v, rng.NextDouble(1.0, 5.0)});
  }
  m.AddConstraint(ConstraintType::kLessEqual, n * 0.8, std::move(terms));
  for (auto _ : state) {
    MipResult r = SolveMip(m);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_MipKnapsack)->Arg(10)->Arg(16);

void BM_MultiSourceBfsPartition(benchmark::State& state) {
  Rng rng(3);
  AffinityGraph g =
      GeneratePowerLawGraph(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(0)) * 2, 1.6, rng);
  std::vector<int> seeds = {0, 1, 2, 3};
  for (auto _ : state) {
    Partition p = MultiSourceBfsPartition(g, seeds);
    benchmark::DoNotOptimize(p.part_of.data());
  }
}
BENCHMARK(BM_MultiSourceBfsPartition)->Arg(200)->Arg(2000);

void BM_KahipLikePartition(benchmark::State& state) {
  Rng rng(4);
  AffinityGraph g = GeneratePowerLawGraph(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(0)) * 2,
      1.6, rng);
  for (auto _ : state) {
    Rng local(5);
    Partition p = KahipLikePartition(g, 4, local);
    benchmark::DoNotOptimize(p.part_of.data());
  }
}
BENCHMARK(BM_KahipLikePartition)->Arg(100)->Arg(400);

void BM_GainedAffinity(benchmark::State& state) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(16.0));
  for (auto _ : state) {
    double v = GainedAffinity(*snapshot->cluster,
                              snapshot->original_placement);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_GainedAffinity);

void BM_MultiStagePartitioning(benchmark::State& state) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(16.0));
  for (auto _ : state) {
    PartitionResult r = PartitionServices(
        *snapshot->cluster, snapshot->original_placement, {});
    benchmark::DoNotOptimize(r.subproblems.data());
  }
}
BENCHMARK(BM_MultiStagePartitioning);

void BM_GcnForward(benchmark::State& state) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(32.0));
  PartitionResult partition = PartitionServices(
      *snapshot->cluster, snapshot->original_placement, {});
  GcnClassifier model(kSelectorFeatureDim, 16, 2, 11);
  FeatureGraph fg = BuildSubproblemFeatureGraph(
      *snapshot->cluster, partition.subproblems.front());
  for (auto _ : state) {
    int label = model.Predict(fg);
    benchmark::DoNotOptimize(label);
  }
}
BENCHMARK(BM_GcnForward);

void BM_GreedyAffinityPlace(benchmark::State& state) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(32.0));
  PartitionResult partition = PartitionServices(
      *snapshot->cluster, snapshot->original_placement, {});
  const Subproblem& sp = partition.subproblems.front();
  for (auto _ : state) {
    Placement scratch = partition.base_placement;
    SubproblemSolution s = GreedyAffinityPlace(*snapshot->cluster, sp,
                                               scratch);
    benchmark::DoNotOptimize(s.gained_affinity);
  }
}
BENCHMARK(BM_GreedyAffinityPlace);

void BM_ColumnGeneration(benchmark::State& state) {
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(M1Spec(32.0));
  PartitionResult partition = PartitionServices(
      *snapshot->cluster, snapshot->original_placement, {});
  const Subproblem& sp = partition.subproblems.front();
  for (auto _ : state) {
    CgOptions options;
    options.max_rounds = 5;
    StatusOr<SubproblemSolution> s = SolveSubproblemCg(
        *snapshot->cluster, sp, partition.base_placement,
        snapshot->original_placement, options);
    benchmark::DoNotOptimize(s.ok());
  }
}
BENCHMARK(BM_ColumnGeneration);

}  // namespace
}  // namespace rasa

BENCHMARK_MAIN();
