// Telemetry overhead bench (not a paper figure): wall-clock cost of the
// continuous-telemetry pipeline on the bench_scaling reference instance
// (M1 at the bench scale), measured as whole workflow runs in three modes:
//   off      — telemetry disabled (the baseline)
//   on       — the in-process pipeline: series appends, SLO burn-rate
//              evaluation, anomaly detectors, traffic-quantile estimation
//   journal  — the pipeline plus the JSONL journal (one fsync per cycle)
//
// Protocol: `reps` interleaved off/on/journal runs (interleaving cancels
// thermal / cache drift), each `cycles` control-loop cycles with the same
// seed.
//
// Two claims are checked:
//   1. Determinism — all three tracks end on bit-identical final
//      placements, every rep. Always asserted, even in smoke mode.
//   2. Overhead — the mean "on" run is <= 3% above "off". The gate is on
//      the in-process pipeline; the journal track is reported alongside
//      but not gated, because its cost is a fixed per-cycle fsync latency
//      that only looms large against sub-second smoke cycles (production
//      cycles run minutes). Skipped under RASA_BENCH_NO_THRESHOLD (tiny
//      deadline-bound runs are jitter-dominated, not telemetry-bound).
//
// Machine-readable output: BENCH_telemetry_overhead.json (one row per
// rep+mode, plus a summary row).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/timer.h"
#include "sim/workflow.h"

namespace {

using namespace rasa;
using namespace rasa::bench;

WorkflowOptions BaseOptions() {
  WorkflowOptions options;
  options.cycles = 4;
  options.seed = 2024;
  options.rasa.timeout_seconds = 10.0 * BenchTimeout();
  options.rasa.partitioning.max_subproblem_services = 12;
  return options;
}

}  // namespace

int main() {
  PrintHeader("Telemetry overhead — continuous-operation pipeline",
              "workflow runs with telemetry off vs on vs on+journal");

  ClusterSpec spec = M1Spec(BenchScale());
  StatusOr<ClusterSnapshot> snapshot = GenerateCluster(spec);
  RASA_CHECK(snapshot.ok()) << snapshot.status().ToString();
  const Cluster& cluster = *snapshot->cluster;
  std::printf("%s: %d services, %d machines, %d containers\n",
              snapshot->name.c_str(), cluster.num_services(),
              cluster.num_machines(), cluster.num_containers());
  PrintRule();

  const AlgorithmSelector selector(SelectorPolicy::kHeuristic);
  const char* scratch = std::getenv("RASA_BENCH_JSON_DIR");
  const std::string telemetry_dir =
      std::string(scratch != nullptr ? scratch : ".") +
      "/telemetry_overhead_scratch";

  BenchJsonWriter json("telemetry_overhead");
  const int reps = 3;
  double off_total = 0.0;
  double on_total = 0.0;
  double journal_total = 0.0;
  std::printf("%4s %10s %10s %10s %9s %9s\n", "rep", "off_s", "on_s",
              "journal_s", "on", "journal");
  for (int rep = 0; rep < reps; ++rep) {
    Placement reference(cluster);
    double rep_seconds[3] = {0.0, 0.0, 0.0};
    for (int mode = 0; mode < 3; ++mode) {
      WorkflowOptions options = BaseOptions();
      if (mode >= 1) options.telemetry.enabled = true;
      if (mode == 2) options.telemetry_dir = telemetry_dir;
      Stopwatch timer;
      StatusOr<WorkflowReport> report = RunWorkflow(
          cluster, snapshot->original_placement, selector, options);
      const double seconds = timer.ElapsedSeconds();
      RASA_CHECK(report.ok()) << report.status().ToString();
      static const char* kModeNames[] = {"off", "on", "journal"};
      rep_seconds[mode] = seconds;
      (mode == 0 ? off_total : mode == 1 ? on_total : journal_total) +=
          seconds;
      json.BeginRow()
          .Field("rep", rep)
          .Field("mode", kModeNames[mode])
          .Field("seconds", seconds);

      // Claim 1: telemetry never steers the loop.
      if (mode == 0) {
        reference = report->final_placement;
      } else if (report->final_placement.DiffCount(reference) != 0 ||
                 reference.DiffCount(report->final_placement) != 0) {
        std::fprintf(stderr,
                     "FAIL: telemetry '%s' run diverged from the "
                     "telemetry-off run (rep %d)\n",
                     kModeNames[mode], rep);
        return 1;
      }
      if (mode >= 1) {
        for (const CycleReport& cr : report->cycles) {
          if (!cr.telemetry.populated) {
            std::fprintf(stderr,
                         "FAIL: a telemetry-on cycle carried no verdicts — "
                         "pipeline was not exercised\n");
            return 1;
          }
        }
      }
    }
    std::printf("%4d %10.3f %10.3f %10.3f %8.3fx %8.3fx\n", rep,
                rep_seconds[0], rep_seconds[1], rep_seconds[2],
                rep_seconds[0] > 0.0 ? rep_seconds[1] / rep_seconds[0] : 0.0,
                rep_seconds[0] > 0.0 ? rep_seconds[2] / rep_seconds[0]
                                     : 0.0);
  }
  PrintRule();

  const double on_overhead =
      off_total > 0.0 ? (on_total - off_total) / off_total : 0.0;
  const double journal_overhead =
      off_total > 0.0 ? (journal_total - off_total) / off_total : 0.0;
  std::printf("mean: off %.3fs, on %.3fs (%+.2f%%), journal %.3fs "
              "(%+.2f%%)\n",
              off_total / reps, on_total / reps, 100.0 * on_overhead,
              journal_total / reps, 100.0 * journal_overhead);
  json.BeginRow()
      .Field("summary", true)
      .Field("mean_off_seconds", off_total / reps)
      .Field("mean_on_seconds", on_total / reps)
      .Field("mean_journal_seconds", journal_total / reps)
      .Field("on_overhead_fraction", on_overhead)
      .Field("journal_overhead_fraction", journal_overhead);

  if (std::getenv("RASA_BENCH_NO_THRESHOLD") != nullptr) {
    std::printf("overhead threshold skipped: RASA_BENCH_NO_THRESHOLD set\n");
    return 0;
  }
  if (on_overhead > 0.03) {
    std::fprintf(stderr, "FAIL: telemetry overhead %.2f%% exceeds 3%%\n",
                 100.0 * on_overhead);
    return 1;
  }
  std::printf("overhead threshold (<= 3%% on the pipeline track): PASS "
              "(%+.2f%%)\n",
              100.0 * on_overhead);
  return 0;
}
