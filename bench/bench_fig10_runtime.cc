// Fig. 10: The optimization quality (total gained affinity) under different
// runtimes. RASA and POP are anytime (quality vs time-out curves); K8S+ and
// APPLSCI19 are single points at their natural runtime.
// Expected shape: RASA's curve dominates POP's everywhere and flattens
// early (partitioning isolates the high-affinity subproblems).

#include "baselines/baselines.h"
#include "bench_util.h"
#include "core/rasa.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Fig. 10 — gained affinity vs runtime (anytime curves)",
              "RASA & POP swept over time-outs; K8S+/APPLSCI19 single points");

  const AlgorithmSelector selector = rasa::bench::BenchSelector();
  const double base = BenchTimeout();
  const double timeouts[] = {base / 8, base / 4, base / 2, base, 2 * base};
  BenchJsonWriter json("fig10_runtime");

  for (const ClusterSnapshot& snapshot : BenchClusters()) {
    std::printf("%s:\n", snapshot.name.c_str());
    std::printf("  %10s %12s %12s\n", "timeout(s)", "RASA", "POP");
    for (double timeout : timeouts) {
      RasaOptions options;
      options.timeout_seconds = timeout;
      options.compute_migration = false;
      RasaOptimizer optimizer(options, selector);
      StatusOr<RasaResult> rasa =
          optimizer.Optimize(*snapshot.cluster, snapshot.original_placement);
      StatusOr<BaselineResult> pop =
          RunPop(*snapshot.cluster, snapshot.original_placement,
                 Deadline::AfterSeconds(timeout), 5);
      std::printf("  %10.3f %12.4f %12.4f\n", timeout,
                  rasa.ok() ? rasa->new_gained_affinity : -1.0,
                  pop.ok() ? pop->gained_affinity : -1.0);
      json.BeginRow()
          .Field("cluster", snapshot.name)
          .Field("timeout_seconds", timeout)
          .Field("rasa_gained_affinity",
                 rasa.ok() ? rasa->new_gained_affinity : -1.0)
          .Field("pop_gained_affinity",
                 pop.ok() ? pop->gained_affinity : -1.0);
    }
    StatusOr<BaselineResult> k8s = RunK8sPlus(
        *snapshot.cluster, Deadline::AfterSeconds(60.0), 5);
    StatusOr<BaselineResult> appl =
        RunApplsci19(*snapshot.cluster, snapshot.original_placement,
                     Deadline::AfterSeconds(60.0), 5);
    if (k8s.ok()) {
      std::printf("  K8S+      point: (%.3fs, %.4f)\n", k8s->seconds,
                  k8s->gained_affinity);
      json.BeginRow()
          .Field("cluster", snapshot.name)
          .Field("baseline", "k8s_plus")
          .Field("seconds", k8s->seconds)
          .Field("gained_affinity", k8s->gained_affinity);
    }
    if (appl.ok()) {
      std::printf("  APPLSCI19 point: (%.3fs, %.4f)\n", appl->seconds,
                  appl->gained_affinity);
      json.BeginRow()
          .Field("cluster", snapshot.name)
          .Field("baseline", "applsci19")
          .Field("seconds", appl->seconds)
          .Field("gained_affinity", appl->gained_affinity);
    }
    PrintRule();
  }
  return 0;
}
