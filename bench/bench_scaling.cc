// Scaling bench (not a paper figure): end-to-end Optimize wall time at
// 1/2/4/8 solver threads on the Table II clusters, with a generous solver
// budget so every subproblem completes and the runs are timing-independent.
//
// Two claims are checked on every row:
//   1. Determinism — the parallel placement and gained affinity are
//      bit-identical to the sequential run at every thread count.
//   2. Speedup — on a machine with >= 8 hardware threads the largest
//      cluster must reach >= 2.5x at 8 threads. On smaller machines the
//      measured numbers are still reported (and written to JSON) but the
//      threshold is not asserted: there is nothing to scale onto.
//
// Machine-readable output: BENCH_scaling.json (threads -> seconds, speedup,
// gained affinity per cluster).

#include <optional>
#include <thread>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/rasa.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Scaling — parallel subproblem solving (work-stealing pool)",
              "Optimize at 1/2/4/8 threads; placements must be bit-identical");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u\n", hw);
  PrintRule();

  const AlgorithmSelector selector(SelectorPolicy::kHeuristic);
  // 10x the usual bench budget: the runs must be solver-bound, not
  // deadline-bound, for the timing comparison to measure parallelism.
  const double timeout = 10.0 * BenchTimeout();
  const int thread_counts[] = {1, 2, 4, 8};
  BenchJsonWriter json("scaling");

  int mismatches = 0;
  double largest_cluster_speedup8 = 0.0;
  std::string largest_cluster;
  int largest_containers = 0;

  for (const ClusterSnapshot& snapshot : BenchClusters()) {
    std::printf("%s (%d services, %d machines):\n", snapshot.name.c_str(),
                snapshot.cluster->num_services(),
                snapshot.cluster->num_machines());
    std::printf("  %8s %10s %9s %14s %10s\n", "threads", "seconds", "speedup",
                "gained_aff", "identical");
    std::optional<RasaResult> sequential;
    double sequential_seconds = 0.0;
    for (int threads : thread_counts) {
      RasaOptions options;
      options.timeout_seconds = timeout;
      options.compute_migration = false;
      options.num_threads = threads;
      RasaOptimizer optimizer(options, selector);
      Stopwatch timer;
      StatusOr<RasaResult> result =
          optimizer.Optimize(*snapshot.cluster, snapshot.original_placement);
      const double seconds = timer.ElapsedSeconds();
      RASA_CHECK(result.ok()) << result.status().ToString();

      bool identical = true;
      double speedup = 1.0;
      if (!sequential.has_value()) {
        sequential = std::move(result).value();
        sequential_seconds = seconds;
      } else {
        speedup = seconds > 0.0 ? sequential_seconds / seconds : 0.0;
        identical =
            result->new_gained_affinity == sequential->new_gained_affinity &&
            result->new_placement.DiffCount(sequential->new_placement) == 0 &&
            sequential->new_placement.DiffCount(result->new_placement) == 0;
        if (!identical) ++mismatches;
      }
      const double gained = sequential.has_value() && threads > 1
                                ? result->new_gained_affinity
                                : sequential->new_gained_affinity;
      std::printf("  %8d %10.3f %8.2fx %14.6f %10s\n", threads, seconds,
                  speedup, gained, identical ? "yes" : "NO");
      json.BeginRow()
          .Field("cluster", snapshot.name)
          .Field("threads", threads)
          .Field("seconds", seconds)
          .Field("speedup", speedup)
          .Field("gained_affinity", gained)
          .Field("identical_to_sequential", identical);
      if (threads == 8 &&
          snapshot.cluster->num_containers() > largest_containers) {
        largest_containers = snapshot.cluster->num_containers();
        largest_cluster = snapshot.name;
        largest_cluster_speedup8 = speedup;
      }
    }
    PrintRule();
  }

  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: %d parallel run(s) diverged from sequential\n",
                 mismatches);
    return 1;
  }
  std::printf("all parallel placements bit-identical to sequential\n");
  std::printf("8-thread speedup on %s: %.2fx\n", largest_cluster.c_str(),
              largest_cluster_speedup8);
  if (std::getenv("RASA_BENCH_NO_THRESHOLD") != nullptr) {
    // Smoke mode (used by the bench_scaling_smoke ctest entry): clusters
    // are too small to amortize the pool, so only the determinism claim is
    // asserted and the timing rows are just recorded for bench_compare.
    std::printf("speedup threshold skipped: RASA_BENCH_NO_THRESHOLD set\n");
    return 0;
  }
  if (hw >= 8) {
    if (largest_cluster_speedup8 < 2.5) {
      std::fprintf(stderr,
                   "FAIL: expected >= 2.5x at 8 threads on %u-thread "
                   "hardware, got %.2fx\n",
                   hw, largest_cluster_speedup8);
      return 1;
    }
    std::printf("speedup threshold (>= 2.5x at 8 threads): PASS\n");
  } else {
    std::printf(
        "speedup threshold skipped: only %u hardware thread(s) available\n",
        hw);
  }
  return 0;
}
