// Fig. 8: Comparison of the gained affinity of different algorithm
// selection policies under the time-out: CG / MIP / HEURISTIC / MLP-BASED /
// GCN-BASED. Expected shape: only GCN-BASED is best-or-tied on every
// cluster.
//
// The learned selectors are trained once on subproblems sampled from four
// training clusters (T1-T4) labeled by racing both pool algorithms —
// exactly the §IV-D protocol — and cached next to the binary.

#include "bench_util.h"
#include "core/rasa.h"
#include "core/selector_trainer.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Fig. 8 — gained affinity by algorithm-selection policy",
              "CG / MIP / HEURISTIC / MLP-BASED / GCN-BASED (ours)");

  SelectorTrainingOptions train;
  train.num_samples = 120;
  train.label_timeout_seconds = std::max(0.2, BenchTimeout() / 3.0);
  train.cluster_scale = 1.5 * BenchScale();
  std::fprintf(stderr, "training/loading selectors...\n");
  StatusOr<TrainedSelectors> selectors =
      GetOrTrainSelectors(ResolveSelectorCachePrefix(), train);
  RASA_CHECK(selectors.ok()) << selectors.status().ToString();

  struct Policy {
    const char* name;
    AlgorithmSelector selector;
  };
  std::vector<Policy> policies;
  policies.push_back({"CG", AlgorithmSelector(SelectorPolicy::kAlwaysCg)});
  policies.push_back({"MIP", AlgorithmSelector(SelectorPolicy::kAlwaysMip)});
  policies.push_back(
      {"HEURISTIC", AlgorithmSelector(SelectorPolicy::kHeuristic)});
  policies.push_back({"MLP-BASED", AlgorithmSelector(selectors->mlp)});
  policies.push_back({"GCN-BASED", AlgorithmSelector(selectors->gcn)});

  std::vector<ClusterSnapshot> clusters = BenchClusters();
  std::printf("%-12s", "Policy");
  for (const ClusterSnapshot& c : clusters) std::printf(" %8s", c.name.c_str());
  std::printf("\n");
  PrintRule();
  std::vector<std::vector<double>> table(policies.size());
  for (size_t pi = 0; pi < policies.size(); ++pi) {
    std::printf("%-12s", policies[pi].name);
    for (const ClusterSnapshot& snapshot : clusters) {
      RasaOptions options;
      options.timeout_seconds = BenchTimeout();
      options.compute_migration = false;
      RasaOptimizer optimizer(options, policies[pi].selector);
      StatusOr<RasaResult> result =
          optimizer.Optimize(*snapshot.cluster, snapshot.original_placement);
      RASA_CHECK(result.ok()) << result.status().ToString();
      table[pi].push_back(result->new_gained_affinity);
      std::printf(" %8.4f", result->new_gained_affinity);
    }
    std::printf("\n");
  }
  PrintRule();
  // Count, per policy, on how many clusters it is within 1% of the best.
  std::printf("clusters where each policy is best-or-near-best (within 1%%):\n");
  for (size_t pi = 0; pi < policies.size(); ++pi) {
    int wins = 0;
    for (size_t ci = 0; ci < clusters.size(); ++ci) {
      double best = 0.0;
      for (size_t qi = 0; qi < policies.size(); ++qi) {
        best = std::max(best, table[qi][ci]);
      }
      if (table[pi][ci] >= 0.99 * best) ++wins;
    }
    std::printf("  %-12s %d/%zu\n", policies[pi].name, wins, clusters.size());
  }
  std::printf("(paper: only GCN-BASED achieves best gained affinity on all "
              "clusters)\n");
  return 0;
}
