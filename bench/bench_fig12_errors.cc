// Fig. 12: Comparison of (normalized) request error rate for four critical
// service pairs in production: WITH RASA vs WITHOUT RASA vs ONLY COLLOCATED.
// Expected shape: error-rate improvements in the double digits
// (paper: 13.27% - 64.42%).

#include "bench_prod_util.h"

int main() {
  using namespace rasa;
  using namespace rasa::bench;

  PrintHeader("Fig. 12 — normalized request error rate, 4 critical pairs",
              "series sampled every 4 steps of a 48-step (24h) simulation");

  ProductionSetup setup = MakeProductionSetup();
  for (const PairProductionSeries& pair : setup.report.pairs) {
    std::printf(
        "  pair (%s, %s)  traffic share %.4f  localized: %.0f%% -> %.0f%%\n",
        setup.snapshot.cluster->service(pair.service_u).name.c_str(),
        setup.snapshot.cluster->service(pair.service_v).name.c_str(),
        pair.qps_weight, 100.0 * pair.without_ratio, 100.0 * pair.with_ratio);
    PrintSeries("WITHOUT RASA", pair.error_without);
    PrintSeries("WITH RASA", pair.error_with);
    PrintSeries("ONLY COLLOC.", pair.error_collocated);
    std::printf("    error-rate improvement: %.2f%%  (paper range: 13.27%% - "
                "64.42%%)\n",
                100.0 * pair.error_improvement);
    PrintRule();
  }
  return 0;
}
